package serve

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sparseart/internal/obs"
	"sparseart/internal/obs/export"
)

func get(t *testing.T, h http.Handler, path string) (*http.Response, []byte) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	resp := rec.Result()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestEndpoints(t *testing.T) {
	reg := obs.New()
	reg.Counter("serve.ops").Add(5)
	reg.Histogram("serve.lat").Observe(time.Millisecond)
	h := New(reg).Handler()

	resp, body := get(t, h, "/metrics")
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != export.ContentTypePrometheus {
		t.Fatalf("/metrics content type %q", ct)
	}
	if resp.Header.Get("Obs-Snapshot-Id") == "" {
		t.Fatal("/metrics missing Obs-Snapshot-Id")
	}
	if fams, err := export.ParsePrometheus(body); err != nil {
		t.Fatalf("/metrics not parseable: %v\n%s", err, body)
	} else if len(fams) == 0 {
		t.Fatal("/metrics empty")
	}

	resp, body = get(t, h, "/metrics.json")
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics.json: %s", resp.Status)
	}
	snap, err := export.DecodeOTLP(body)
	if err != nil {
		t.Fatalf("/metrics.json not decodable: %v", err)
	}
	if snap.Counters["serve.ops"] != 5 {
		t.Fatalf("decoded counter = %d, want 5", snap.Counters["serve.ops"])
	}
	if !bytes.Contains(body, []byte(`"aggregationTemporality": 2`)) {
		t.Fatal("full scrape should be cumulative")
	}

	resp, body = get(t, h, "/trace")
	if resp.StatusCode != 200 || !bytes.Contains(body, []byte("traceEvents")) {
		t.Fatalf("/trace: %s %q", resp.Status, body)
	}

	resp, body = get(t, h, "/snapshot")
	if resp.StatusCode != 200 || !bytes.Contains(body, []byte("serve.ops")) {
		t.Fatalf("/snapshot: %s %q", resp.Status, body)
	}

	resp, _ = get(t, h, "/debug/pprof/cmdline")
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/pprof/cmdline: %s", resp.Status)
	}
}

func TestDeltaScrape(t *testing.T) {
	reg := obs.New()
	c := reg.Counter("serve.ops")
	c.Add(10)
	h := New(reg).Handler()

	resp, _ := get(t, h, "/metrics")
	id := resp.Header.Get("Obs-Snapshot-Id")

	c.Add(3)
	resp, body := get(t, h, "/metrics?since="+id)
	if resp.StatusCode != 200 {
		t.Fatalf("delta scrape: %s", resp.Status)
	}
	if !strings.Contains(string(body), "serve_ops_total 3") {
		t.Fatalf("delta scrape should report 3, got:\n%s", body)
	}
	id2 := resp.Header.Get("Obs-Snapshot-Id")
	if id2 == "" || id2 == id {
		t.Fatalf("delta scrape id %q after %q", id2, id)
	}

	// Idle interval: the delta omits the unchanged counter entirely.
	_, body = get(t, h, "/metrics?since="+id2)
	if strings.Contains(string(body), "serve_ops_total") {
		t.Fatalf("idle delta still reports the counter:\n%s", body)
	}

	// OTLP delta carries delta temporality and the interval value.
	c.Add(2)
	resp, _ = get(t, h, "/metrics.json")
	id3 := resp.Header.Get("Obs-Snapshot-Id")
	c.Add(7)
	_, body = get(t, h, "/metrics.json?since="+id3)
	if !bytes.Contains(body, []byte(`"aggregationTemporality": 1`)) {
		t.Fatalf("OTLP delta not marked delta:\n%s", body)
	}
	snap, err := export.DecodeOTLP(body)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["serve.ops"] != 7 {
		t.Fatalf("OTLP delta counter = %d, want 7", snap.Counters["serve.ops"])
	}

	resp, _ = get(t, h, "/metrics?since=never-issued")
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("unknown baseline: %s, want 410", resp.Status)
	}
}

func TestBaselineEviction(t *testing.T) {
	reg := obs.New()
	h := New(reg).Handler()
	resp, _ := get(t, h, "/metrics")
	old := resp.Header.Get("Obs-Snapshot-Id")
	for i := 0; i < maxBaselines+1; i++ {
		get(t, h, "/metrics")
	}
	resp, _ = get(t, h, "/metrics?since="+old)
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("evicted baseline: %s, want 410", resp.Status)
	}
}

// TestScrapeHammer scrapes /metrics and /metrics.json while writers
// pound the registry, under -race in CI. Every exposition must parse
// and every histogram must be internally coherent (the parser enforces
// _count == +Inf bucket and non-decreasing cumulative buckets), which
// is exactly the torn-snapshot failure mode: a scrape landing between
// a histogram's bucket increment and count increment.
func TestScrapeHammer(t *testing.T) {
	reg := obs.New()
	h := New(reg).Handler()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("hammer.ops", "worker", fmt.Sprint(w))
			hist := reg.Histogram("hammer.lat")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				hist.Observe(time.Duration(i%4096) * time.Nanosecond)
				if i%64 == 0 {
					sp := reg.Start("hammer.span")
					sp.End()
				}
			}
		}(w)
	}
	deadline := time.After(300 * time.Millisecond)
	var scrapes int
loop:
	for {
		select {
		case <-deadline:
			break loop
		default:
		}
		_, body := get(t, h, "/metrics")
		if _, err := export.ParsePrometheus(body); err != nil {
			close(stop)
			t.Fatalf("scrape %d incoherent: %v\n%s", scrapes, err, body)
		}
		_, body = get(t, h, "/metrics.json")
		snap, err := export.DecodeOTLP(body)
		if err != nil {
			close(stop)
			t.Fatalf("OTLP scrape %d: %v", scrapes, err)
		}
		for name, hs := range snap.Histograms {
			var total int64
			for _, b := range hs.Buckets {
				total += b.Count
			}
			if total != hs.Count {
				close(stop)
				t.Fatalf("scrape %d: %q torn: buckets sum %d, count %d", scrapes, name, total, hs.Count)
			}
		}
		scrapes++
	}
	close(stop)
	wg.Wait()
	if scrapes == 0 {
		t.Fatal("no scrapes completed")
	}
}

func TestReporter(t *testing.T) {
	reg := obs.New()
	c := reg.Counter("rep.ops")
	c.Add(100) // pre-Start activity must not be re-reported

	var mu sync.Mutex
	var got []*obs.Snapshot
	sink := func(s *obs.Snapshot, delta bool) error {
		if !delta {
			t.Error("reporter emitted non-delta")
		}
		mu.Lock()
		got = append(got, s)
		mu.Unlock()
		return nil
	}
	rep := NewReporter(reg, 10*time.Millisecond, sink)
	rep.Start()
	c.Add(5)
	time.Sleep(35 * time.Millisecond)
	c.Add(2)
	if err := rep.Close(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(got) == 0 {
		t.Fatal("no emissions")
	}
	var sum int64
	for _, s := range got {
		sum += s.Counters["rep.ops"]
	}
	// Intervals tile the post-Start activity exactly: 5 + 2, never the
	// pre-Start 100.
	if sum != 7 {
		t.Fatalf("interval deltas sum to %d, want 7", sum)
	}
}

func TestReporterWriteOTLP(t *testing.T) {
	reg := obs.New()
	var buf bytes.Buffer
	var mu sync.Mutex
	lockedWriter := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	rep := NewReporter(reg, time.Hour, WriteOTLP(lockedWriter))
	rep.Start()
	reg.Counter("rep.ops").Add(9)
	if err := rep.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	out := buf.Bytes()
	mu.Unlock()
	snap, err := export.DecodeOTLP(bytes.TrimSpace(out))
	if err != nil {
		t.Fatalf("flush-on-close output not decodable: %v\n%s", err, out)
	}
	if snap.Counters["rep.ops"] != 9 {
		t.Fatalf("flushed counter = %d, want 9", snap.Counters["rep.ops"])
	}
	if !bytes.Contains(out, []byte(`"aggregationTemporality":1`)) {
		t.Fatal("reporter output should be delta temporality")
	}
	if bytes.IndexByte(bytes.TrimRight(out, "\n"), '\n') != -1 {
		t.Fatal("reporter output is not one JSONL line per interval")
	}
}

func TestReporterPush(t *testing.T) {
	reg := obs.New()
	var mu sync.Mutex
	var bodies [][]byte
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		mu.Lock()
		bodies = append(bodies, b)
		mu.Unlock()
	}))
	defer srv.Close()

	rep := NewReporter(reg, time.Hour, PushOTLP(srv.URL, srv.Client()))
	rep.Start()
	reg.Counter("rep.ops").Add(4)
	if err := rep.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(bodies) != 1 {
		t.Fatalf("%d pushes, want 1", len(bodies))
	}
	snap, err := export.DecodeOTLP(bodies[0])
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["rep.ops"] != 4 {
		t.Fatalf("pushed counter = %d, want 4", snap.Counters["rep.ops"])
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
