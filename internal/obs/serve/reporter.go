package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"sparseart/internal/obs"
	"sparseart/internal/obs/export"
)

func nowUnixNano() uint64 { return uint64(time.Now().UnixNano()) }

// Sink receives one interval delta from a Reporter. The snapshot holds
// only the activity since the previous emission (obs.Delta semantics);
// delta is false only for a Reporter configured to emit cumulative
// snapshots. Returning an error does not stop the Reporter — intervals
// keep their cadence and the next emission still covers only its own
// interval, so one failed push loses one interval, not the stream's
// alignment.
type Sink func(s *obs.Snapshot, delta bool) error

// WriteOTLP returns a Sink that appends each interval's OTLP-JSON
// document to w as one line (JSONL), suitable for a file a collector
// tails or for piping to jq. Writes are serialized by the Reporter.
func WriteOTLP(w io.Writer) Sink {
	return func(s *obs.Snapshot, delta bool) error {
		out, err := export.OTLP(s, export.OTLPOptions{TimeUnixNano: nowUnixNano(), Delta: delta})
		if err != nil {
			return err
		}
		var line bytes.Buffer
		line.Grow(len(out))
		if err := json.Compact(&line, out); err != nil {
			return err
		}
		line.WriteByte('\n')
		_, err = w.Write(line.Bytes())
		return err
	}
}

// PushOTLP returns a Sink that POSTs each interval's OTLP-JSON
// document to url (an OTLP/HTTP collector's /v1/metrics endpoint
// speaks this shape). A nil client uses a dedicated client with a 10s
// timeout so a stalled collector cannot wedge the report loop.
func PushOTLP(url string, client *http.Client) Sink {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	return func(s *obs.Snapshot, delta bool) error {
		out, err := export.OTLP(s, export.OTLPOptions{TimeUnixNano: nowUnixNano(), Delta: delta})
		if err != nil {
			return err
		}
		resp, err := client.Post(url, "application/json", bytes.NewReader(out))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			return fmt.Errorf("push to %s: %s", url, resp.Status)
		}
		return nil
	}
}

// Reporter periodically emits interval deltas of a registry to a Sink.
// Construct with NewReporter, start with Start, stop with Close; Close
// flushes the final partial interval before returning, so short-lived
// processes still report their tail activity.
type Reporter struct {
	reg      *obs.Registry
	interval time.Duration
	sink     Sink

	mu      sync.Mutex
	prev    *obs.Snapshot
	lastErr error

	stop chan struct{}
	done chan struct{}
}

// NewReporter builds a Reporter emitting to sink every interval. A nil
// reg reports the process-global registry; a non-positive interval
// defaults to 10s.
func NewReporter(reg *obs.Registry, interval time.Duration, sink Sink) *Reporter {
	if reg == nil {
		reg = obs.Global()
	}
	if interval <= 0 {
		interval = 10 * time.Second
	}
	return &Reporter{reg: reg, interval: interval, sink: sink}
}

// Start launches the report loop. The baseline is the registry state
// at Start, so the first emission covers only post-Start activity.
// Start is not idempotent; call it once.
func (r *Reporter) Start() {
	r.mu.Lock()
	r.prev = r.reg.Snapshot()
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	r.mu.Unlock()
	go r.loop()
}

func (r *Reporter) loop() {
	defer close(r.done)
	t := time.NewTicker(r.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			r.flush()
		case <-r.stop:
			return
		}
	}
}

// flush emits the delta since the previous emission and advances the
// baseline. The baseline advances even when the sink fails: each
// interval is reported once, and a lossy sink drops intervals rather
// than re-reporting them (delta streams double-count on replay).
func (r *Reporter) flush() {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.reg.Snapshot()
	d := obs.Delta(r.prev, cur)
	r.prev = cur
	if err := r.sink(d, true); err != nil {
		r.lastErr = err
	}
}

// Close stops the loop, flushes the final partial interval, and
// returns the most recent sink error (nil when every emission
// succeeded). Safe to call on a Reporter that was never started.
func (r *Reporter) Close() error {
	r.mu.Lock()
	started := r.stop != nil
	r.mu.Unlock()
	if started {
		close(r.stop)
		<-r.done
	} else {
		// Never started: emit everything once so Close-only usage still
		// reports.
		r.mu.Lock()
		if r.prev == nil {
			r.prev = &obs.Snapshot{}
		}
		r.mu.Unlock()
	}
	r.flush()
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastErr
}
