package compress

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"testing/quick"
)

func TestGet(t *testing.T) {
	for _, id := range []ID{None, DeltaVarint, RLE} {
		c, err := Get(id)
		if err != nil {
			t.Fatalf("Get(%d): %v", id, err)
		}
		if c.ID() != id {
			t.Fatalf("Get(%d).ID() = %d", id, c.ID())
		}
		if c.Name() == "" {
			t.Fatalf("codec %d has no name", id)
		}
	}
	if _, err := Get(200); err == nil {
		t.Fatal("unknown codec accepted")
	}
}

func TestAllListsEveryCodec(t *testing.T) {
	all := All()
	if len(all) != 3 || all[0].ID() != None {
		t.Fatalf("All() = %d codecs, first %v", len(all), all[0].ID())
	}
}

func roundTrip(t *testing.T, c Codec, src []byte) []byte {
	t.Helper()
	enc := c.Encode(src)
	dec, err := c.Decode(enc)
	if err != nil {
		t.Fatalf("%s: decode: %v", c.Name(), err)
	}
	if !bytes.Equal(dec, src) {
		t.Fatalf("%s: round trip mismatch: %d bytes in, %d out", c.Name(), len(src), len(dec))
	}
	return enc
}

func TestRoundTripEmpty(t *testing.T) {
	for _, c := range All() {
		roundTrip(t, c, nil)
		roundTrip(t, c, []byte{})
	}
}

func TestRoundTripSmall(t *testing.T) {
	for _, c := range All() {
		roundTrip(t, c, []byte{1})
		roundTrip(t, c, []byte{0, 0, 0})
		roundTrip(t, c, []byte("hello, fragment"))
	}
}

func u64sToBytes(v []uint64) []byte {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], x)
	}
	return out
}

func TestDeltaVarintCompressesSortedAddresses(t *testing.T) {
	// A sorted LINEAR address stream with small gaps — the codec's
	// design target — must shrink dramatically.
	addrs := make([]uint64, 10000)
	for i := range addrs {
		addrs[i] = uint64(i) * 3
	}
	src := u64sToBytes(addrs)
	enc := roundTrip(t, deltaVarintCodec{}, src)
	if len(enc) > len(src)/4 {
		t.Fatalf("sorted stream compressed %d -> %d, want at least 4x", len(src), len(enc))
	}
}

func TestDeltaVarintUnsortedStillRoundTrips(t *testing.T) {
	addrs := []uint64{100, 5, 1 << 63, 0, 42, 42}
	roundTrip(t, deltaVarintCodec{}, u64sToBytes(addrs))
}

func TestDeltaVarintTrailingBytes(t *testing.T) {
	src := append(u64sToBytes([]uint64{1, 2, 3}), 0xAA, 0xBB, 0xCC)
	roundTrip(t, deltaVarintCodec{}, src)
}

func TestRLECompressesRuns(t *testing.T) {
	src := bytes.Repeat([]byte{0}, 4096)
	enc := roundTrip(t, rleCodec{}, src)
	if len(enc) > 16 {
		t.Fatalf("zero run compressed to %d bytes", len(enc))
	}
	mixed := append(bytes.Repeat([]byte{7}, 100), []byte{1, 2, 3}...)
	roundTrip(t, rleCodec{}, mixed)
}

func TestDecodeCorrupt(t *testing.T) {
	for _, c := range []Codec{deltaVarintCodec{}, rleCodec{}} {
		if _, err := c.Decode([]byte{}); err == nil {
			t.Errorf("%s: empty payload accepted", c.Name())
		}
	}
	// Declared word count with no deltas.
	bad := binary.AppendUvarint(nil, 1000)
	bad = binary.AppendUvarint(bad, 0)
	if _, err := (deltaVarintCodec{}).Decode(bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("delta-varint: truncated deltas gave %v", err)
	}
	// RLE runs exceeding the declared total.
	bad = binary.AppendUvarint(nil, 2)
	bad = binary.AppendUvarint(bad, 100)
	bad = append(bad, 7)
	if _, err := (rleCodec{}).Decode(bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("rle: oversize run gave %v", err)
	}
	// RLE run header with no byte following.
	bad = binary.AppendUvarint(nil, 1)
	bad = binary.AppendUvarint(bad, 1)
	if _, err := (rleCodec{}).Decode(bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("rle: run without byte gave %v", err)
	}
	// RLE that stops short of its declared total.
	bad = binary.AppendUvarint(nil, 10)
	bad = binary.AppendUvarint(bad, 1)
	bad = append(bad, 7)
	if _, err := (rleCodec{}).Decode(bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("rle: short payload gave %v", err)
	}
}

func TestNoneCopies(t *testing.T) {
	src := []byte{1, 2, 3}
	enc := noneCodec{}.Encode(src)
	src[0] = 9
	if enc[0] != 1 {
		t.Fatal("none codec aliases its input")
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 2, -2, 1 << 62, -(1 << 62)} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Fatalf("zigzag round trip of %d = %d", v, got)
		}
	}
	// Small magnitudes must map to small codes (varint friendliness).
	if zigzag(-1) != 1 || zigzag(1) != 2 {
		t.Fatalf("zigzag(-1)=%d zigzag(1)=%d", zigzag(-1), zigzag(1))
	}
}

// TestRoundTripQuick property-tests every codec on arbitrary byte
// strings.
func TestRoundTripQuick(t *testing.T) {
	for _, c := range All() {
		c := c
		f := func(src []byte) bool {
			enc := c.Encode(src)
			dec, err := c.Decode(enc)
			return err == nil && bytes.Equal(dec, src)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

// TestDecodeGarbageNeverPanicsQuick feeds random bytes to the decoders;
// they may error but must not panic or hang.
func TestDecodeGarbageNeverPanicsQuick(t *testing.T) {
	for _, c := range All() {
		c := c
		f := func(junk []byte) bool {
			_, _ = c.Decode(junk)
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}
