package compress

import (
	"bytes"
	"testing"
)

// FuzzRoundTrip: every codec must reproduce any input exactly.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte("hello world, twelve bytes+"))
	f.Fuzz(func(t *testing.T, src []byte) {
		for _, c := range All() {
			enc := c.Encode(src)
			dec, err := c.Decode(enc)
			if err != nil {
				t.Fatalf("%s: decode of own encoding: %v", c.Name(), err)
			}
			if !bytes.Equal(dec, src) {
				t.Fatalf("%s: round trip mismatch", c.Name())
			}
		}
	})
}

// FuzzDecodeGarbage: decoders must reject or accept garbage without
// panicking or allocating unbounded memory.
func FuzzDecodeGarbage(f *testing.F) {
	f.Add(uint8(1), []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Add(uint8(2), []byte{0x80})
	f.Fuzz(func(t *testing.T, idSel uint8, junk []byte) {
		c, err := Get(ID(idSel % 3))
		if err != nil {
			t.Fatal(err)
		}
		out, err := c.Decode(junk)
		if err == nil && len(out) > maxDecodedSize {
			t.Fatalf("%s: decoded %d bytes past the limit", c.Name(), len(out))
		}
	})
}
