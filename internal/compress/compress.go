// Package compress implements the orthogonal compression layer the paper
// positions below the storage organizations (§II: "choose a basic sparse
// organization first and then apply compression algorithms to further
// reduce data size", the TileDB/HDF5 practice). Codecs transform a
// fragment payload byte-for-byte; the fragment header records which
// codec was applied so readers can invert it.
package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"sparseart/internal/obs"
)

// ID identifies a codec in fragment headers. The zero value means "not
// compressed".
type ID uint8

const (
	// None stores the payload verbatim.
	None ID = 0
	// DeltaVarint interprets the payload as little-endian uint64s and
	// stores zigzag-encoded deltas as varints. It shines on sorted
	// streams (LINEAR addresses, CSR pointers, CSF fptr levels).
	DeltaVarint ID = 1
	// RLE is byte-level run-length encoding, effective on long zero or
	// repeat runs.
	RLE ID = 2
)

// ErrCorrupt reports an undecodable compressed payload.
var ErrCorrupt = errors.New("compress: corrupt payload")

// maxDecodedSize bounds how large a decoded payload may claim to be,
// protecting decoders from allocation bombs in corrupt input. 1 GiB is
// far beyond any fragment this module writes.
const maxDecodedSize = 1 << 30

// Codec encodes and decodes byte payloads. Decode(Encode(p)) == p for
// every input.
type Codec interface {
	ID() ID
	Name() string
	Encode(src []byte) []byte
	Decode(src []byte) ([]byte, error)
}

// Get returns the codec for an ID. The returned codec reports its
// encode/decode time and byte ratio to the process-wide obs registry
// when one is enabled.
func Get(id ID) (Codec, error) {
	switch id {
	case None:
		return observed{noneCodec{}}, nil
	case DeltaVarint:
		return observed{deltaVarintCodec{}}, nil
	case RLE:
		return observed{rleCodec{}}, nil
	}
	return nil, fmt.Errorf("compress: unknown codec id %d", id)
}

// All returns every registered codec, None first.
func All() []Codec {
	return []Codec{observed{noneCodec{}}, observed{deltaVarintCodec{}}, observed{rleCodec{}}}
}

// observed wraps a codec with obs instrumentation: per-codec encode and
// decode latency histograms plus input/output byte counters, from which
// the achieved compression ratio follows. When the global registry is
// nil the wrapper costs one atomic load per call.
type observed struct {
	inner Codec
}

func (o observed) ID() ID       { return o.inner.ID() }
func (o observed) Name() string { return o.inner.Name() }

func (o observed) Encode(src []byte) []byte {
	reg := obs.Global()
	if reg == nil {
		return o.inner.Encode(src)
	}
	t := time.Now()
	out := o.inner.Encode(src)
	name := o.inner.Name()
	reg.Histogram("compress.encode", "codec", name).Observe(time.Since(t))
	reg.Counter("compress.encode.in_bytes", "codec", name).Add(int64(len(src)))
	reg.Counter("compress.encode.out_bytes", "codec", name).Add(int64(len(out)))
	return out
}

func (o observed) Decode(src []byte) ([]byte, error) {
	reg := obs.Global()
	if reg == nil {
		return o.inner.Decode(src)
	}
	t := time.Now()
	out, err := o.inner.Decode(src)
	name := o.inner.Name()
	reg.Histogram("compress.decode", "codec", name).Observe(time.Since(t))
	if err != nil {
		reg.Counter("compress.decode.errors", "codec", name).Inc()
		return out, err
	}
	reg.Counter("compress.decode.in_bytes", "codec", name).Add(int64(len(src)))
	reg.Counter("compress.decode.out_bytes", "codec", name).Add(int64(len(out)))
	return out, err
}

// EncodeSection compresses one fragment section with the given codec and
// prefixes the result with the codec ID, making the section
// self-describing: a ranged reader can decode it without consulting any
// other section. This is the codec boundary the v2 sectioned fragment
// layout stores on disk.
func EncodeSection(id ID, src []byte) ([]byte, error) {
	c, err := Get(id)
	if err != nil {
		return nil, err
	}
	enc := c.Encode(src)
	out := make([]byte, 0, len(enc)+1)
	out = append(out, byte(id))
	return append(out, enc...), nil
}

// DecodeSection inverts EncodeSection, returning the raw bytes and the
// codec ID the section was written with.
func DecodeSection(src []byte) ([]byte, ID, error) {
	if len(src) < 1 {
		return nil, None, fmt.Errorf("%w: empty section", ErrCorrupt)
	}
	id := ID(src[0])
	c, err := Get(id)
	if err != nil {
		return nil, id, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	out, err := c.Decode(src[1:])
	if err != nil {
		return nil, id, err
	}
	return out, id, nil
}

type noneCodec struct{}

func (noneCodec) ID() ID       { return None }
func (noneCodec) Name() string { return "none" }
func (noneCodec) Encode(src []byte) []byte {
	return append([]byte(nil), src...)
}
func (noneCodec) Decode(src []byte) ([]byte, error) {
	return append([]byte(nil), src...), nil
}

type deltaVarintCodec struct{}

func (deltaVarintCodec) ID() ID       { return DeltaVarint }
func (deltaVarintCodec) Name() string { return "delta-varint" }

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(v uint64) int64 { return int64(v>>1) ^ -int64(v&1) }

func (deltaVarintCodec) Encode(src []byte) []byte {
	nWords := len(src) / 8
	trailing := src[nWords*8:]
	out := make([]byte, 0, len(src)/2+16)
	out = binary.AppendUvarint(out, uint64(nWords))
	out = binary.AppendUvarint(out, uint64(len(trailing)))
	var prev uint64
	for i := 0; i < nWords; i++ {
		v := binary.LittleEndian.Uint64(src[i*8:])
		out = binary.AppendUvarint(out, zigzag(int64(v-prev)))
		prev = v
	}
	out = append(out, trailing...)
	return out
}

func (deltaVarintCodec) Decode(src []byte) ([]byte, error) {
	nWords, k := binary.Uvarint(src)
	if k <= 0 {
		return nil, fmt.Errorf("%w: bad word count", ErrCorrupt)
	}
	src = src[k:]
	nTrail, k := binary.Uvarint(src)
	if k <= 0 {
		return nil, fmt.Errorf("%w: bad trailing count", ErrCorrupt)
	}
	src = src[k:]
	if nWords > uint64(len(src)) || nTrail > uint64(len(src)) { // cheap sanity bound: each word needs >= 1 byte
		return nil, fmt.Errorf("%w: declared sizes exceed payload", ErrCorrupt)
	}
	if nWords*8+nTrail > maxDecodedSize {
		return nil, fmt.Errorf("%w: declared length %d exceeds limit", ErrCorrupt, nWords*8+nTrail)
	}
	out := make([]byte, 0, nWords*8+nTrail)
	var prev uint64
	for i := uint64(0); i < nWords; i++ {
		d, k := binary.Uvarint(src)
		if k <= 0 {
			return nil, fmt.Errorf("%w: truncated delta %d/%d", ErrCorrupt, i, nWords)
		}
		src = src[k:]
		prev += uint64(unzigzag(d))
		out = binary.LittleEndian.AppendUint64(out, prev)
	}
	if uint64(len(src)) != nTrail {
		return nil, fmt.Errorf("%w: trailing bytes: got %d want %d", ErrCorrupt, len(src), nTrail)
	}
	return append(out, src...), nil
}

type rleCodec struct{}

func (rleCodec) ID() ID       { return RLE }
func (rleCodec) Name() string { return "rle" }

func (rleCodec) Encode(src []byte) []byte {
	out := make([]byte, 0, len(src)/4+16)
	out = binary.AppendUvarint(out, uint64(len(src)))
	for i := 0; i < len(src); {
		j := i + 1
		for j < len(src) && src[j] == src[i] {
			j++
		}
		out = binary.AppendUvarint(out, uint64(j-i))
		out = append(out, src[i])
		i = j
	}
	return out
}

func (rleCodec) Decode(src []byte) ([]byte, error) {
	total, k := binary.Uvarint(src)
	if k <= 0 {
		return nil, fmt.Errorf("%w: bad total length", ErrCorrupt)
	}
	if total > maxDecodedSize {
		return nil, fmt.Errorf("%w: declared length %d exceeds limit", ErrCorrupt, total)
	}
	src = src[k:]
	out := make([]byte, 0, total)
	for len(src) > 0 {
		run, k := binary.Uvarint(src)
		if k <= 0 || k >= len(src)+1 && run > 0 {
			return nil, fmt.Errorf("%w: truncated run", ErrCorrupt)
		}
		src = src[k:]
		if len(src) == 0 {
			return nil, fmt.Errorf("%w: run without byte", ErrCorrupt)
		}
		if uint64(len(out))+run > total {
			return nil, fmt.Errorf("%w: runs exceed declared length %d", ErrCorrupt, total)
		}
		b := src[0]
		src = src[1:]
		for i := uint64(0); i < run; i++ {
			out = append(out, b)
		}
	}
	if uint64(len(out)) != total {
		return nil, fmt.Errorf("%w: decoded %d bytes, want %d", ErrCorrupt, len(out), total)
	}
	return out, nil
}
