// Package stats provides the small summary-statistics toolkit the
// benchmark harness uses for multi-trial measurements: location
// (mean/median), spread, and order statistics over float64 samples and
// time.Duration series.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary describes a sample.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Median, Max float64
	P25, P75, P95    float64
}

// Summarize computes a Summary; it returns the zero value for an empty
// sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs)}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	s.Median = Quantile(sorted, 0.5)
	s.P25 = Quantile(sorted, 0.25)
	s.P75 = Quantile(sorted, 0.75)
	s.P95 = Quantile(sorted, 0.95)
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	s.Mean = sum / float64(len(sorted))
	if len(sorted) > 1 {
		var ss float64
		for _, x := range sorted {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(sorted)-1))
	}
	return s
}

// Quantile interpolates the q-th quantile (q in [0,1]) of a sorted
// sample.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// MedianDuration returns the median of a duration sample (zero for an
// empty sample).
func MedianDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = float64(d)
	}
	sort.Float64s(xs)
	return time.Duration(Quantile(xs, 0.5))
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g±%.2g min=%.4g p50=%.4g p95=%.4g max=%.4g",
		s.N, s.Mean, s.Std, s.Min, s.Median, s.P95, s.Max)
}
