package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Fatalf("summary = %+v", s)
	}
	want := math.Sqrt(2.5) // sample variance of 1..5 is 2.5
	if math.Abs(s.Std-want) > 1e-12 {
		t.Fatalf("std = %v, want %v", s.Std, want)
	}
}

func TestSummarizeEdges(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Std != 0 || s.Median != 7 || s.P95 != 7 {
		t.Fatalf("singleton summary = %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct {
		q, want float64
	}{
		{0, 10}, {1, 40}, {0.5, 25}, {0.25, 17.5}, {-1, 10}, {2, 40},
	}
	for _, tc := range cases {
		if got := Quantile(sorted, tc.q); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile")
	}
}

func TestMedianDuration(t *testing.T) {
	ds := []time.Duration{3 * time.Second, time.Second, 2 * time.Second}
	if got := MedianDuration(ds); got != 2*time.Second {
		t.Fatalf("median = %v", got)
	}
	if MedianDuration(nil) != 0 {
		t.Fatal("empty median")
	}
}

func TestSummaryString(t *testing.T) {
	if s := Summarize([]float64{1, 2}).String(); s == "" {
		t.Fatal("empty string")
	}
}

// TestSummarizeQuick property-tests the ordering invariants
// min <= p25 <= median <= p75 <= p95 <= max and mean within [min, max].
func TestSummarizeQuick(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			// Drop non-finite draws and clamp magnitudes so the mean
			// cannot overflow — the accumulation itself is not under
			// test here.
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		ordered := s.Min <= s.P25 && s.P25 <= s.Median && s.Median <= s.P75 &&
			s.P75 <= s.P95 && s.P95 <= s.Max
		meanOK := s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9
		// Summarize must not reorder the caller's slice.
		return ordered && meanOK && !sort.Float64sAreSorted(clean) ||
			ordered && meanOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{5, 1, 4}
	Summarize(xs)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 4 {
		t.Fatal("input reordered")
	}
}
