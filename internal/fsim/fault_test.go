package fsim

import (
	"errors"
	"testing"
)

func TestFaultFSNeverFailsByDefault(t *testing.T) {
	f := NewFaultFS(NewPerlmutterSim())
	for i := 0; i < 10; i++ {
		if err := f.WriteFile("x", []byte("a")); err != nil {
			t.Fatal(err)
		}
	}
	if f.Ops() != 10 {
		t.Fatalf("ops = %d", f.Ops())
	}
}

func TestFaultFSFailAfter(t *testing.T) {
	f := NewFaultFS(NewPerlmutterSim())
	f.FailAfter = 2
	if err := f.WriteFile("a", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadFile("a"); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteFile("b", nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("third op: %v", err)
	}
	if _, err := f.List(""); !errors.Is(err, ErrInjected) {
		t.Fatalf("fourth op: %v", err)
	}
}

func TestFaultFSFailOnName(t *testing.T) {
	f := NewFaultFS(NewPerlmutterSim())
	f.FailOn = "frag-0001"
	custom := errors.New("disk on fire")
	f.Err = custom
	if err := f.WriteFile("store/frag-0000", nil); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteFile("store/frag-0001", nil); !errors.Is(err, custom) {
		t.Fatalf("matching name: %v", err)
	}
	if _, err := f.ReadFile("store/frag-0001"); !errors.Is(err, custom) {
		t.Fatalf("matching read: %v", err)
	}
	if err := f.Remove("store/frag-0000"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Size("store/frag-0001"); !errors.Is(err, custom) {
		t.Fatalf("matching stat: %v", err)
	}
}

func TestFaultFSForwardsCost(t *testing.T) {
	sim := NewPerlmutterSim()
	f := NewFaultFS(sim)
	if err := f.WriteFile("x", make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	if f.TakeCost().Total() == 0 {
		t.Fatal("cost not forwarded")
	}
	// Wrapping a model-less FS reports zero cost rather than panicking.
	osfs, err := NewOSFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f2 := NewFaultFS(osfs)
	if f2.TakeCost().Total() != 0 {
		t.Fatal("phantom cost")
	}
}
