package fsim

import (
	"bytes"
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
)

// testOpenBehavior checks the ranged-read contract every FS must honor.
func testOpenBehavior(t *testing.T, f FS) {
	t.Helper()
	data := make([]byte, 10_000)
	for i := range data {
		data[i] = byte(i)
	}
	if err := f.WriteFile("d/frag", data); err != nil {
		t.Fatal(err)
	}
	h, err := f.Open("d/frag")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if h.Size() != int64(len(data)) {
		t.Fatalf("Size = %d, want %d", h.Size(), len(data))
	}
	// Interior range.
	buf := make([]byte, 512)
	if n, err := h.ReadAt(buf, 1000); err != nil || n != 512 {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(buf, data[1000:1512]) {
		t.Fatal("interior range mismatch")
	}
	// Short read at the tail returns io.EOF with the partial data.
	n, err := h.ReadAt(buf, int64(len(data))-100)
	if n != 100 || err != io.EOF {
		t.Fatalf("tail ReadAt = %d, %v, want 100, EOF", n, err)
	}
	if !bytes.Equal(buf[:100], data[len(data)-100:]) {
		t.Fatal("tail range mismatch")
	}
	// Past the end.
	if n, err := h.ReadAt(buf, int64(len(data))+5); n != 0 || err != io.EOF {
		t.Fatalf("past-end ReadAt = %d, %v", n, err)
	}
	// Negative offsets are errors.
	if _, err := h.ReadAt(buf, -1); err == nil {
		t.Fatal("negative offset succeeded")
	}
	// Missing file.
	if _, err := f.Open("nope"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Open(missing) = %v", err)
	}
}

func TestSimFSOpenBehavior(t *testing.T) {
	testOpenBehavior(t, NewPerlmutterSim())
}

func TestOSFSOpenBehavior(t *testing.T) {
	f, err := NewOSFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testOpenBehavior(t, f)
}

// TestSimFSOpenCostPerRange pins the ranged cost model: Open charges
// one metadata latency and nothing else; each ReadAt charges pure
// transfer time for its own range. A header-sized read of a large file
// is therefore modeled orders of magnitude cheaper than ReadFile.
func TestSimFSOpenCostPerRange(t *testing.T) {
	f := NewPerlmutterSim()
	model := PerlmutterLustre()
	const size = 20 << 20
	if err := f.WriteFile("frag", make([]byte, size)); err != nil {
		t.Fatal(err)
	}
	f.ResetStats()
	f.TakeCost()

	h, err := f.Open("frag")
	if err != nil {
		t.Fatal(err)
	}
	c := f.TakeCost()
	if c.Meta != model.OpLatency || c.Read != 0 || c.Write != 0 {
		t.Fatalf("open cost = %+v, want Meta=OpLatency only", c)
	}
	if st := f.Stats(); st.MetaOps != 1 || st.ReadOps != 0 || st.BytesRead != 0 {
		t.Fatalf("stats after open = %+v", st)
	}

	// Header-sized range: pure transfer for 512 bytes, no latency.
	buf := make([]byte, 512)
	if _, err := h.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	c = f.TakeCost()
	if c.Read != model.transferTime(512) || c.Meta != 0 {
		t.Fatalf("ranged cost = %+v, want Read=transferTime(512)", c)
	}
	if st := f.Stats(); st.ReadOps != 1 || st.BytesRead != 512 {
		t.Fatalf("stats after ranged read = %+v", st)
	}

	// The whole-file baseline costs the full transfer; the header-only
	// open path must be far cheaper.
	if _, err := f.ReadFile("frag"); err != nil {
		t.Fatal(err)
	}
	full := f.TakeCost()
	if full.Read < 100*model.transferTime(512) {
		t.Fatalf("full read %v not ≫ header read %v", full.Read, model.transferTime(512))
	}
	h.Close()
}

// TestSimFSOpenSnapshot: a handle keeps the contents it was opened on,
// surviving overwrite and removal — like a POSIX fd on an unlinked
// file, which is what fragment immutability relies on.
func TestSimFSOpenSnapshot(t *testing.T) {
	f := NewPerlmutterSim()
	if err := f.WriteFile("x", []byte("old-contents")); err != nil {
		t.Fatal(err)
	}
	h, err := f.Open("x")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if err := f.WriteFile("x", []byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := f.Remove("x"); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 12)
	if _, err := h.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "old-contents" {
		t.Fatalf("snapshot = %q", buf)
	}
}

// TestOSFSWriteFilePermissions: WriteFile goes through os.CreateTemp,
// which opens the scratch file 0600; the published file must still end
// up world-readable (0644).
func TestOSFSWriteFilePermissions(t *testing.T) {
	dir := t.TempDir()
	f, err := NewOSFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteFile("a/frag", []byte("data")); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(filepath.Join(dir, "a", "frag"))
	if err != nil {
		t.Fatal(err)
	}
	if perm := info.Mode().Perm(); perm != 0o644 {
		t.Fatalf("published file mode = %o, want 644", perm)
	}
}

// TestFaultFSOpenAndRangedReads: faults fire at the open itself and at
// each ranged read on an already-open handle.
func TestFaultFSOpenAndRangedReads(t *testing.T) {
	f := NewFaultFS(NewPerlmutterSim())
	if err := f.WriteFile("frag-1", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}

	// Open before arming; the handle is live when the fault arms.
	h, err := f.Open("frag-1")
	if err != nil {
		t.Fatal(err)
	}
	f.FailOn = "frag-"
	if _, err := f.Open("frag-1"); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed Open = %v, want ErrInjected", err)
	}
	buf := make([]byte, 10)
	if _, err := h.ReadAt(buf, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed ReadAt = %v, want ErrInjected", err)
	}
	if got := f.Injected(); got != 2 {
		t.Fatalf("Injected = %d, want 2", got)
	}
	f.FailOn = ""
	if _, err := h.ReadAt(buf, 0); err != nil {
		t.Fatalf("disarmed ReadAt = %v", err)
	}
	h.Close()
}
