package fsim

import (
	"errors"
	"io/fs"
	"testing"
	"time"
)

func testFSBehavior(t *testing.T, f FS) {
	t.Helper()
	// Write, read back.
	if err := f.WriteFile("a/b/one", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	data, err := f.ReadFile("a/b/one")
	if err != nil || string(data) != "hello" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	// Overwrite replaces.
	if err := f.WriteFile("a/b/one", []byte("bye")); err != nil {
		t.Fatal(err)
	}
	if data, _ := f.ReadFile("a/b/one"); string(data) != "bye" {
		t.Fatalf("overwrite: got %q", data)
	}
	// Size.
	if n, err := f.Size("a/b/one"); err != nil || n != 3 {
		t.Fatalf("Size = %d, %v", n, err)
	}
	// Append extends an existing file and creates a missing one.
	if err := f.Append("a/b/one", []byte("!!")); err != nil {
		t.Fatal(err)
	}
	if data, _ := f.ReadFile("a/b/one"); string(data) != "bye!!" {
		t.Fatalf("append: got %q", data)
	}
	if err := f.Append("a/b/fresh", []byte("new")); err != nil {
		t.Fatal(err)
	}
	if data, _ := f.ReadFile("a/b/fresh"); string(data) != "new" {
		t.Fatalf("append-create: got %q", data)
	}
	if err := f.Remove("a/b/fresh"); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteFile("a/b/one", []byte("bye")); err != nil {
		t.Fatal(err)
	}
	// List is sorted and prefix-filtered.
	if err := f.WriteFile("a/b/two", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteFile("c/other", []byte("y")); err != nil {
		t.Fatal(err)
	}
	names, err := f.List("a/b/")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a/b/one" || names[1] != "a/b/two" {
		t.Fatalf("List = %v", names)
	}
	all, err := f.List("")
	if err != nil || len(all) != 3 {
		t.Fatalf("List(\"\") = %v, %v", all, err)
	}
	// Remove.
	if err := f.Remove("a/b/one"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadFile("a/b/one"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("read after remove: %v", err)
	}
	if err := f.Remove("a/b/one"); err == nil {
		t.Fatal("double remove succeeded")
	}
	// Missing-file errors.
	if _, err := f.ReadFile("nope"); err == nil {
		t.Fatal("read of missing file succeeded")
	}
	if _, err := f.Size("nope"); err == nil {
		t.Fatal("stat of missing file succeeded")
	}
}

func TestSimFSBehavior(t *testing.T) {
	testFSBehavior(t, NewPerlmutterSim())
}

func TestOSFSBehavior(t *testing.T) {
	f, err := NewOSFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testFSBehavior(t, f)
}

func TestSimFSIsolation(t *testing.T) {
	f := NewPerlmutterSim()
	src := []byte{1, 2, 3}
	if err := f.WriteFile("x", src); err != nil {
		t.Fatal(err)
	}
	src[0] = 9
	got, _ := f.ReadFile("x")
	if got[0] != 1 {
		t.Fatal("SimFS aliases writer's buffer")
	}
	got[1] = 9
	again, _ := f.ReadFile("x")
	if again[1] != 2 {
		t.Fatal("SimFS aliases reader's buffer")
	}
}

// TestSimFSAppendSnapshot: a handle opened before an append must keep
// seeing the file as it was at open time (the same immutability
// WriteFile's replace gives), and the append must charge only its own
// bytes to the cost model.
func TestSimFSAppendSnapshot(t *testing.T) {
	f := NewPerlmutterSim()
	if err := f.WriteFile("x", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	h, err := f.Open("x")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	f.TakeCost()
	if err := f.Append("x", make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	cost := f.TakeCost()
	if cost.Meta != PerlmutterLustre().OpLatency {
		t.Fatalf("append meta cost %v, want one op latency", cost.Meta)
	}
	if want := PerlmutterLustre().transferTime(4096); cost.Write != want {
		t.Fatalf("append write cost %v, want %v (appended bytes only)", cost.Write, want)
	}
	if h.Size() != 3 {
		t.Fatalf("open handle grew to %d bytes after append", h.Size())
	}
	if n, _ := f.Size("x"); n != 3+4096 {
		t.Fatalf("file size %d after append", n)
	}
}

func TestSimFSStats(t *testing.T) {
	f := NewPerlmutterSim()
	if err := f.WriteFile("x", make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadFile("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Size("x"); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.WriteOps != 1 || st.ReadOps != 1 || st.MetaOps != 1 {
		t.Fatalf("ops = %+v", st)
	}
	if st.BytesWritten != 1000 || st.BytesRead != 1000 {
		t.Fatalf("bytes = %+v", st)
	}
	if st.Modeled.Total() == 0 {
		t.Fatal("no modeled cost accumulated")
	}
	f.ResetStats()
	if f.Stats().WriteOps != 0 || f.Stats().Modeled.Total() != 0 {
		t.Fatal("ResetStats did not clear")
	}
}

func TestSimFSTakeCost(t *testing.T) {
	f := NewPerlmutterSim()
	if err := f.WriteFile("x", make([]byte, 185_000_000/10)); err != nil { // ~0.1 s at 185 MB/s
		t.Fatal(err)
	}
	c := f.TakeCost()
	if c.Write < 90*time.Millisecond || c.Write > 110*time.Millisecond {
		t.Fatalf("modeled write = %v, want ~100ms", c.Write)
	}
	if c.Meta != PerlmutterLustre().OpLatency {
		t.Fatalf("modeled meta = %v", c.Meta)
	}
	// Drained: the next take is empty.
	if f.TakeCost().Total() != 0 {
		t.Fatal("TakeCost did not drain")
	}
	// Stats keep the cumulative view.
	if f.Stats().Modeled.Write != c.Write {
		t.Fatal("cumulative modeled cost lost")
	}
}

// TestSimFSTableIIICalibration checks the calibration claim in the
// package comment: the paper's 4D MSP COO fragment (~22.5 MB) should
// model to ~0.12 s and the LINEAR fragment (~9 MB) to ~0.05 s.
func TestSimFSTableIIICalibration(t *testing.T) {
	m := PerlmutterLustre()
	coo := m.transferTime(22_500_000)
	if coo < 100*time.Millisecond || coo > 140*time.Millisecond {
		t.Fatalf("COO-sized transfer = %v, paper says 0.1217s", coo)
	}
	linear := m.transferTime(9_000_000)
	if linear < 40*time.Millisecond || linear > 60*time.Millisecond {
		t.Fatalf("LINEAR-sized transfer = %v, paper says 0.0504s", linear)
	}
}

func TestCostModelStriping(t *testing.T) {
	base := CostModel{OpLatency: 0, Bandwidth: 1e6, Stripes: 1, StripeUnit: 1 << 20}
	striped := base
	striped.Stripes = 4
	n := int64(8 << 20)
	t1 := base.transferTime(n)
	t4 := striped.transferTime(n)
	if t4 >= t1 {
		t.Fatalf("striping did not speed up: %v vs %v", t1, t4)
	}
	if t1 < 7*t4/2 || t1 > 9*t4/2 {
		t.Fatalf("4 stripes should be ~4x: %v vs %v", t1, t4)
	}
	// Transfers under one stripe unit see single-stripe bandwidth.
	small := int64(1000)
	if striped.transferTime(small) != base.transferTime(small) {
		t.Fatal("small transfer should not stripe")
	}
	if base.transferTime(0) != 0 || base.transferTime(-5) != 0 {
		t.Fatal("non-positive sizes must cost nothing")
	}
}

func TestNewSimFSRejectsBadModel(t *testing.T) {
	bad := []CostModel{
		{OpLatency: -1, Bandwidth: 1, Stripes: 1, StripeUnit: 1},
		{OpLatency: 0, Bandwidth: 0, Stripes: 1, StripeUnit: 1},
		{OpLatency: 0, Bandwidth: 1, Stripes: 0, StripeUnit: 1},
		{OpLatency: 0, Bandwidth: 1, Stripes: 1, StripeUnit: 0},
	}
	for i, m := range bad {
		if _, err := NewSimFS(m); err == nil {
			t.Errorf("model %d accepted: %+v", i, m)
		}
	}
}

func TestOSFSListSkipsTempFiles(t *testing.T) {
	dir := t.TempDir()
	f, err := NewOSFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteFile("keep", []byte("x")); err != nil {
		t.Fatal(err)
	}
	names, err := f.List("")
	if err != nil || len(names) != 1 || names[0] != "keep" {
		t.Fatalf("List = %v, %v", names, err)
	}
}

func TestSimFSConcurrentAccess(t *testing.T) {
	f := NewPerlmutterSim()
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			name := string(rune('a' + g))
			for i := 0; i < 50; i++ {
				if err := f.WriteFile(name, []byte{byte(i)}); err != nil {
					done <- err
					return
				}
				if _, err := f.ReadFile(name); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if st := f.Stats(); st.WriteOps != 400 || st.ReadOps != 400 {
		t.Fatalf("stats after concurrency: %+v", st)
	}
}
