// Package fsim abstracts the file system under the fragment store and
// provides the simulated Lustre backend that stands in for the paper's
// NERSC Perlmutter environment.
//
// Two backends implement FS:
//
//   - OSFS writes real files under a root directory, for wall-clock runs.
//   - SimFS keeps fragments in memory and charges each operation to a
//     calibrated cost model (fixed per-operation latency plus bytes over
//     an effective stripe bandwidth). The defaults are calibrated from
//     the paper's own Table III: the 4D-MSP COO fragment (~22.5 MB)
//     takes 0.1217 s and the LINEAR fragment (~9 MB) takes 0.0504 s,
//     both consistent with ~185 MB/s effective stream bandwidth, while
//     the constant "Others" row (~17 ms) is per-fragment metadata cost.
//
// The store reports the modeled durations in its write/read breakdowns
// whenever the FS implements CostReporter, which is how the benchmark
// harness reproduces Figure 3/5 and Table III deterministically.
package fsim

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"sparseart/internal/obs"
)

// FS is the minimal file-system surface the fragment store needs. Names
// use forward slashes on every backend.
type FS interface {
	// WriteFile atomically creates or replaces a file.
	WriteFile(name string, data []byte) error
	// Append adds data to the end of a file, creating it if absent. A
	// single Append is atomic on SimFS; on a real file system a crash
	// mid-append can leave a torn tail, which is why the manifest log
	// frames and checksums every record it appends.
	Append(name string, data []byte) error
	// ReadFile returns the full contents of a file. It is a convenience
	// equivalent to Open + one ReadAt of the whole file.
	ReadFile(name string) ([]byte, error)
	// Open returns a ranged-read handle on a file. The caller must
	// Close it. Sectioned fragment readers use this to fetch only the
	// byte ranges a query touches.
	Open(name string) (File, error)
	// List returns, sorted, the names of all files whose name starts
	// with prefix.
	List(prefix string) ([]string, error)
	// Remove deletes a file; removing a missing file is an error.
	Remove(name string) error
	// Size returns the size of a file in bytes.
	Size(name string) (int64, error)
}

// File is an open ranged-read handle: a seekable view of one file that
// transfers only the ranges actually read. On cost-modeled backends each
// ReadAt charges bytes-over-bandwidth for its range alone, which is what
// makes header-only fragment opens cheap.
type File interface {
	io.ReaderAt
	io.Closer
	// Size returns the file's size in bytes.
	Size() int64
}

// Cost is an accumulated modeled duration split by operation class.
type Cost struct {
	Write time.Duration // data transfer of writes
	Read  time.Duration // data transfer of reads
	Meta  time.Duration // fixed per-operation (open/create/stat) latency
}

// Total returns the sum of all components.
func (c Cost) Total() time.Duration { return c.Write + c.Read + c.Meta }

func (c *Cost) add(o Cost) {
	c.Write += o.Write
	c.Read += o.Read
	c.Meta += o.Meta
}

// CostReporter is implemented by backends with a cost model. TakeCost
// returns the modeled cost accumulated since the previous call and
// resets the accumulator, letting the store attribute I/O cost to the
// phase that incurred it.
type CostReporter interface {
	TakeCost() Cost
}

// Stats aggregates traffic counters for a backend.
type Stats struct {
	WriteOps, ReadOps, MetaOps int64
	BytesWritten, BytesRead    int64
	Modeled                    Cost
}

// CostModel parameterizes SimFS. All fields must be positive.
type CostModel struct {
	// OpLatency is the fixed cost charged to every metadata-touching
	// operation (create, open, stat, list, remove).
	OpLatency time.Duration
	// Bandwidth is the effective stream bandwidth in bytes/second that
	// a single stripe sustains.
	Bandwidth float64
	// Stripes is the stripe count; transfers larger than one stripe
	// unit are spread across stripes, dividing transfer time.
	Stripes int
	// StripeUnit is the bytes per stripe chunk; transfers smaller than
	// one unit see single-stripe bandwidth.
	StripeUnit int64
}

// PerlmutterLustre returns the cost model calibrated against Table III
// (see the package comment). Stripes is 1 because the paper's fragments
// are single files written from one process.
func PerlmutterLustre() CostModel {
	return CostModel{
		OpLatency:  8 * time.Millisecond,
		Bandwidth:  185e6,
		Stripes:    1,
		StripeUnit: 1 << 20,
	}
}

func (m CostModel) validate() error {
	if m.OpLatency < 0 || m.Bandwidth <= 0 || m.Stripes < 1 || m.StripeUnit < 1 {
		return fmt.Errorf("fsim: invalid cost model %+v", m)
	}
	return nil
}

// transferTime models moving n bytes.
func (m CostModel) transferTime(n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	stripes := int64(m.Stripes)
	units := (n + m.StripeUnit - 1) / m.StripeUnit
	if units < stripes {
		stripes = units
	}
	if stripes < 1 {
		stripes = 1
	}
	perStripe := float64(n) / float64(stripes)
	return time.Duration(perStripe / m.Bandwidth * float64(time.Second))
}

// SimFS is an in-memory file system with a Lustre-like cost model. It is
// safe for concurrent use.
type SimFS struct {
	mu      sync.Mutex
	files   map[string][]byte
	model   CostModel
	stats   Stats
	pending Cost
	obs     *obs.Registry
}

// NewSimFS returns a SimFS with the given cost model.
func NewSimFS(model CostModel) (*SimFS, error) {
	if err := model.validate(); err != nil {
		return nil, err
	}
	return &SimFS{files: map[string][]byte{}, model: model}, nil
}

// NewPerlmutterSim returns a SimFS with the Table III calibration.
func NewPerlmutterSim() *SimFS {
	fs, err := NewSimFS(PerlmutterLustre())
	if err != nil {
		panic(err) // the built-in model is valid by construction
	}
	return fs
}

// SetObs binds the backend to a specific observability registry; nil
// (the default) falls back to the process-wide obs.Global().
func (s *SimFS) SetObs(r *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obs = r
}

// reg resolves the backend's registry under s.mu.
func (s *SimFS) reg() *obs.Registry {
	if s.obs != nil {
		return s.obs
	}
	return obs.Global()
}

func (s *SimFS) charge(c Cost) {
	s.pending.add(c)
	s.stats.Modeled.add(c)
}

// observeOp records one operation's wall time next to its modeled cost
// (the "per-op modeled vs. wall latency" pair) and its byte traffic.
func (s *SimFS) observeOp(op string, start time.Time, modeled Cost, bytes int64) {
	reg := s.reg()
	if reg == nil {
		return
	}
	reg.Histogram("fsim.op.wall", "op", op).Observe(time.Since(start))
	reg.Histogram("fsim.op.modeled", "op", op).Observe(modeled.Total())
	reg.Counter("fsim.ops", "op", op).Inc()
	if bytes > 0 {
		reg.Counter("fsim.bytes", "op", op).Add(bytes)
	}
}

// WriteFile implements FS.
func (s *SimFS) WriteFile(name string, data []byte) error {
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.files[name] = append([]byte(nil), data...)
	s.stats.WriteOps++
	s.stats.BytesWritten += int64(len(data))
	cost := Cost{Meta: s.model.OpLatency, Write: s.model.transferTime(int64(len(data)))}
	s.charge(cost)
	s.observeOp("write", start, cost, int64(len(data)))
	return nil
}

// Append implements FS. The whole append lands atomically (SimFS holds
// its lock across the mutation), and the cost model charges one metadata
// latency plus transfer time for the appended bytes alone — which is
// what makes a manifest-log append O(1) in store size where WriteFile
// of a full manifest is O(fragments).
func (s *SimFS) Append(name string, data []byte) error {
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	// Copy-on-append keeps outstanding Open handles (which snapshot the
	// current slice) immutable, mirroring WriteFile's replace semantics.
	old := s.files[name]
	grown := make([]byte, 0, len(old)+len(data))
	grown = append(append(grown, old...), data...)
	s.files[name] = grown
	s.stats.WriteOps++
	s.stats.BytesWritten += int64(len(data))
	cost := Cost{Meta: s.model.OpLatency, Write: s.model.transferTime(int64(len(data)))}
	s.charge(cost)
	s.observeOp("append", start, cost, int64(len(data)))
	return nil
}

// ReadFile implements FS.
func (s *SimFS) ReadFile(name string) ([]byte, error) {
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.files[name]
	if !ok {
		return nil, &fs.PathError{Op: "read", Path: name, Err: fs.ErrNotExist}
	}
	s.stats.ReadOps++
	s.stats.BytesRead += int64(len(data))
	cost := Cost{Meta: s.model.OpLatency, Read: s.model.transferTime(int64(len(data)))}
	s.charge(cost)
	s.observeOp("read", start, cost, int64(len(data)))
	return append([]byte(nil), data...), nil
}

// Open implements FS. The open itself charges one metadata latency (the
// open RPC); each subsequent ReadAt charges transfer time for its range
// alone, so a header-only open of a large fragment costs latency plus a
// few hundred bytes of bandwidth instead of the whole file.
func (s *SimFS) Open(name string) (File, error) {
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.files[name]
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	s.stats.MetaOps++
	cost := Cost{Meta: s.model.OpLatency}
	s.charge(cost)
	s.observeOp("open", start, cost, 0)
	// The handle snapshots the current contents: WriteFile replaces the
	// map entry with a fresh slice, so this view stays immutable even if
	// the file is overwritten or removed after Open.
	return &simFile{fs: s, name: name, data: data}, nil
}

// simFile is a ranged-read handle on a SimFS snapshot.
type simFile struct {
	fs   *SimFS
	name string
	data []byte
}

// ReadAt implements io.ReaderAt, charging the cost model for the range.
func (f *simFile) ReadAt(p []byte, off int64) (int, error) {
	start := time.Now()
	if off < 0 {
		return 0, &fs.PathError{Op: "read", Path: f.name, Err: fmt.Errorf("negative offset %d", off)}
	}
	var n int
	if off < int64(len(f.data)) {
		n = copy(p, f.data[off:])
	}
	f.fs.mu.Lock()
	f.fs.stats.ReadOps++
	f.fs.stats.BytesRead += int64(n)
	cost := Cost{Read: f.fs.model.transferTime(int64(n))}
	f.fs.charge(cost)
	f.fs.observeOp("read", start, cost, int64(n))
	f.fs.mu.Unlock()
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *simFile) Size() int64 { return int64(len(f.data)) }

func (f *simFile) Close() error { return nil }

// List implements FS.
func (s *SimFS) List(prefix string) ([]string, error) {
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	var names []string
	for name := range s.files {
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	s.stats.MetaOps++
	cost := Cost{Meta: s.model.OpLatency}
	s.charge(cost)
	s.observeOp("list", start, cost, 0)
	return names, nil
}

// Remove implements FS.
func (s *SimFS) Remove(name string) error {
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.files[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(s.files, name)
	s.stats.MetaOps++
	cost := Cost{Meta: s.model.OpLatency}
	s.charge(cost)
	s.observeOp("remove", start, cost, 0)
	return nil
}

// Size implements FS.
func (s *SimFS) Size(name string) (int64, error) {
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.files[name]
	if !ok {
		return 0, &fs.PathError{Op: "stat", Path: name, Err: fs.ErrNotExist}
	}
	s.stats.MetaOps++
	cost := Cost{Meta: s.model.OpLatency}
	s.charge(cost)
	s.observeOp("stat", start, cost, 0)
	return int64(len(data)), nil
}

// TakeCost implements CostReporter.
func (s *SimFS) TakeCost() Cost {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.pending
	s.pending = Cost{}
	return c
}

// Stats returns a snapshot of the traffic counters.
func (s *SimFS) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats zeroes the counters and any pending cost.
func (s *SimFS) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = Stats{}
	s.pending = Cost{}
}

// OSFS stores files under a root directory on the real file system.
type OSFS struct {
	root string
}

// NewOSFS returns an OSFS rooted at dir, creating it if needed.
func NewOSFS(dir string) (*OSFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fsim: create root: %w", err)
	}
	return &OSFS{root: dir}, nil
}

func (o *OSFS) path(name string) string {
	return filepath.Join(o.root, filepath.FromSlash(name))
}

// WriteFile implements FS, creating parent directories as needed and
// renaming into place for atomicity.
func (o *OSFS) WriteFile(name string, data []byte) error {
	p := o.path(name)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	// CreateTemp opens the scratch file mode 0600; fix the mode on the
	// descriptor (bypassing the umask) so the published file is
	// world-readable like a plain create would leave it.
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), p)
}

// Append implements FS. The data goes out in one O_APPEND write, which
// keeps concurrent appenders from interleaving; durability against a
// torn tail after a crash is the caller's problem (the manifest log
// CRC-frames its records and truncates a torn tail on replay).
func (o *OSFS) Append(name string, data []byte) error {
	p := o.path(name)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	f, err := os.OpenFile(p, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile implements FS.
func (o *OSFS) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(o.path(name))
}

// Open implements FS.
func (o *OSFS) Open(name string) (File, error) {
	f, err := os.Open(o.path(name))
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &osFile{f: f, size: fi.Size()}, nil
}

// osFile adapts *os.File to the File interface with a size captured at
// open time (fragments are immutable once published).
type osFile struct {
	f    *os.File
	size int64
}

func (f *osFile) ReadAt(p []byte, off int64) (int, error) { return f.f.ReadAt(p, off) }
func (f *osFile) Size() int64                             { return f.size }
func (f *osFile) Close() error                            { return f.f.Close() }

// List implements FS.
func (o *OSFS) List(prefix string) ([]string, error) {
	var names []string
	err := filepath.WalkDir(o.root, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, err := filepath.Rel(o.root, p)
		if err != nil {
			return err
		}
		name := filepath.ToSlash(rel)
		if strings.HasPrefix(name, prefix) && !strings.HasPrefix(filepath.Base(name), ".tmp-") {
			names = append(names, name)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	return names, nil
}

// Remove implements FS.
func (o *OSFS) Remove(name string) error {
	return os.Remove(o.path(name))
}

// Size implements FS.
func (o *OSFS) Size(name string) (int64, error) {
	fi, err := os.Stat(o.path(name))
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

var (
	_ FS           = (*SimFS)(nil)
	_ FS           = (*OSFS)(nil)
	_ CostReporter = (*SimFS)(nil)
)
