package fsim

import (
	"errors"
	"sync"

	"sparseart/internal/obs"
)

// ErrInjected is the default failure returned by FaultFS.
var ErrInjected = errors.New("fsim: injected fault")

// FaultFS wraps another FS and fails operations on command, for testing
// the storage engine's error paths. The zero configuration never fails;
// set FailAfter to allow that many successful operations and fail every
// one after, or use FailOn to fail operations touching names containing
// a substring. A CostReporter inner FS is forwarded.
type FaultFS struct {
	Inner FS
	// FailAfter fails every operation once this many (across all
	// kinds) have succeeded. Negative means never.
	FailAfter int
	// FailOn fails any operation whose name contains this substring
	// (empty means no name-based failures).
	FailOn string
	// Err is the error to inject; nil means ErrInjected.
	Err error
	// Obs, when non-nil, receives the fault-injection metrics instead
	// of the process-wide obs.Global().
	Obs *obs.Registry

	mu       sync.Mutex
	ops      int
	injected int
}

// NewFaultFS wraps inner with no failures armed.
func NewFaultFS(inner FS) *FaultFS {
	return &FaultFS{Inner: inner, FailAfter: -1}
}

func (f *FaultFS) check(op, name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	inject := false
	if f.FailOn != "" && contains(name, f.FailOn) {
		inject = true
	}
	if f.FailAfter >= 0 && f.ops >= f.FailAfter {
		inject = true
	}
	if inject {
		f.injected++
		reg := f.Obs
		if reg == nil {
			reg = obs.Global()
		}
		reg.Counter("fsim.fault.injected", "op", op).Inc()
		if f.Err != nil {
			return f.Err
		}
		return ErrInjected
	}
	f.ops++
	return nil
}

// Injected returns the number of operations that have failed by
// injection.
func (f *FaultFS) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Ops returns the number of operations that have succeeded.
func (f *FaultFS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// WriteFile implements FS.
func (f *FaultFS) WriteFile(name string, data []byte) error {
	if err := f.check("write", name); err != nil {
		return err
	}
	return f.Inner.WriteFile(name, data)
}

// Append implements FS. The check runs before the inner append, so an
// injected fault means no bytes reached the file — the "append never
// happened" crash point; torn-tail corruption is simulated separately
// by truncating the file contents directly.
func (f *FaultFS) Append(name string, data []byte) error {
	if err := f.check("append", name); err != nil {
		return err
	}
	return f.Inner.Append(name, data)
}

// ReadFile implements FS.
func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if err := f.check("read", name); err != nil {
		return nil, err
	}
	return f.Inner.ReadFile(name)
}

// Open implements FS. The open itself and every ReadAt on the returned
// handle go through the fault check, so both "file won't open" and
// "transfer fails mid-read" are injectable.
func (f *FaultFS) Open(name string) (File, error) {
	if err := f.check("open", name); err != nil {
		return nil, err
	}
	inner, err := f.Inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fault: f, name: name, inner: inner}, nil
}

// faultFile routes each ranged read through the fault check.
type faultFile struct {
	fault *FaultFS
	name  string
	inner File
}

func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if err := ff.fault.check("read", ff.name); err != nil {
		return 0, err
	}
	return ff.inner.ReadAt(p, off)
}

func (ff *faultFile) Size() int64  { return ff.inner.Size() }
func (ff *faultFile) Close() error { return ff.inner.Close() }

// List implements FS.
func (f *FaultFS) List(prefix string) ([]string, error) {
	if err := f.check("list", prefix); err != nil {
		return nil, err
	}
	return f.Inner.List(prefix)
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	if err := f.check("remove", name); err != nil {
		return err
	}
	return f.Inner.Remove(name)
}

// Size implements FS.
func (f *FaultFS) Size(name string) (int64, error) {
	if err := f.check("stat", name); err != nil {
		return 0, err
	}
	return f.Inner.Size(name)
}

// TakeCost forwards to the inner cost model when present.
func (f *FaultFS) TakeCost() Cost {
	if cr, ok := f.Inner.(CostReporter); ok {
		return cr.TakeCost()
	}
	return Cost{}
}

var (
	_ FS           = (*FaultFS)(nil)
	_ CostReporter = (*FaultFS)(nil)
)
