package serve_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"reflect"
	"testing"
	"time"

	"sparseart/internal/core"
	"sparseart/internal/fsim"
	"sparseart/internal/obs"
	"sparseart/internal/serve"
	"sparseart/internal/store"
	"sparseart/internal/tensor"
)

// tracedShard boots one wire server over a fresh chunked store and
// returns its address plus the registry its spans land in.
func tracedShard(t *testing.T, kind core.Kind, shape, tile tensor.Shape) (string, *obs.Registry) {
	t.Helper()
	reg := obs.New()
	reg.SetProc("shard")
	c, err := store.NewChunked(fsim.NewPerlmutterSim(), "shard", kind, shape, tile, store.WithObs(reg))
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(serve.ChunkedBackend(c), serve.Config{Obs: reg})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String(), reg
}

// TestTracedQueryByteIdentical is the differential satellite: for every
// storage kind, a query issued under a sampled trace (with the slow-log
// set to log everything) must return exactly the bytes an untraced
// query returns — observation must never change an answer.
func TestTracedQueryByteIdentical(t *testing.T) {
	shape := tensor.Shape{16, 16}
	for _, kind := range append(core.PaperKinds(), core.COOSorted, core.BCOO) {
		t.Run(kind.String(), func(t *testing.T) {
			reg := obs.New()
			reg.SlowLog().SetThreshold(0) // log every query
			st, err := store.Create(fsim.NewPerlmutterSim(), "s", kind, shape, store.WithObs(reg))
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(7))
			for round := 0; round < 3; round++ {
				coords, values := randomPoints(rng, shape, 30)
				if _, err := st.Write(coords, values); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := st.DeleteRegion(tensor.Region{Start: []uint64{4, 4}, Size: []uint64{5, 6}}); err != nil {
				t.Fatal(err)
			}

			plain := context.Background()
			traced := obs.ContextWithTrace(plain, obs.NewTrace(true))
			region := tensor.Region{Start: []uint64{2, 1}, Size: []uint64{11, 13}}
			reqs := []store.QueryRequest{
				{Region: &region, AsOf: store.AsOfLatest},
				{Region: &region, AsOf: store.AsOfLatest, Strategy: store.StrategyScan},
				{Region: &region, AsOf: store.AsOfLatest, Strategy: store.StrategyAuto},
				{Probe: region.Coords(), AsOf: store.AsOfLatest},
				{Probe: region.Coords(), AsOf: store.AsOfLatest, Workers: 3},
			}
			for i, req := range reqs {
				want, _, err := st.Query(plain, req)
				if err != nil {
					t.Fatalf("req %d untraced: %v", i, err)
				}
				got, _, err := st.Query(traced, req)
				if err != nil {
					t.Fatalf("req %d traced: %v", i, err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("req %d: traced result differs from untraced", i)
				}
			}
			if n := len(reg.Snapshot().TraceSpans); n == 0 {
				t.Fatal("no trace spans recorded for sampled queries")
			}
			if n := len(reg.SlowLog().Entries()); n < len(reqs) {
				t.Fatalf("%d slow-log entries, want at least %d", n, len(reqs))
			}
		})
	}
}

// TestTracePropagatesThroughRouter drives the acceptance path in-process:
// one region read, client → router → 3 shards, must leave spans in every
// process's registry sharing one trace ID, with parent links forming a
// connected tree.
func TestTracePropagatesThroughRouter(t *testing.T) {
	shape := tensor.Shape{24, 24}
	tile := tensor.Shape{8, 8}
	var shardRegs []*obs.Registry
	var addrs []string
	for i := 0; i < 3; i++ {
		addr, reg := tracedShard(t, core.CSF, shape, tile)
		addrs = append(addrs, addr)
		shardRegs = append(shardRegs, reg)
	}
	routerReg := obs.New()
	routerReg.SetProc("router")
	router, err := serve.NewRouter(addrs, routerReg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { router.Close() })
	// Front the router with its own wire server so the client hop is a
	// real RPC too — client.request spans land in the client registry.
	clientReg := obs.New()
	clientReg.SetProc("client")
	_, c, _ := startServer(t, router, serve.Config{Obs: routerReg})

	ctx := context.Background()
	rng := rand.New(rand.NewSource(3))
	coords, values := randomPoints(rng, shape, 80)
	if _, err := router.Write(ctx, coords, values); err != nil {
		t.Fatal(err)
	}

	tc := obs.NewTrace(true)
	tctx := obs.ContextWithTrace(ctx, tc)
	region := tensor.Region{Start: make([]uint64, 2), Size: shape}
	// The wire client stamps spans into the process-global registry; use
	// the router Backend directly under a client-side span instead, so
	// the test owns every registry it asserts on.
	sp, tctx := clientReg.StartCtx(tctx, "client.request")
	if _, _, err := c.Query(tctx, store.QueryRequest{Region: &region, AsOf: store.AsOfLatest}); err != nil {
		t.Fatal(err)
	}
	sp.End()

	byID := map[uint64]obs.TraceSpan{}
	procs := map[string]int{}
	for _, reg := range append([]*obs.Registry{clientReg, routerReg}, shardRegs...) {
		for _, ts := range reg.Snapshot().TraceSpans {
			if ts.TraceID() != tc.TraceID() {
				t.Fatalf("span %s in proc %s has trace %s, want %s", ts.Name, ts.Proc, ts.TraceID(), tc.TraceID())
			}
			byID[ts.SpanID] = ts
			procs[ts.Proc]++
		}
	}
	for _, want := range []string{"client", "router", "shard"} {
		if procs[want] == 0 {
			t.Fatalf("no spans from proc %q (got %v)", want, procs)
		}
	}
	// Every parent link must resolve to another captured span or to the
	// trace root the test minted.
	for _, ts := range byID {
		if ts.ParentID == tc.Span {
			continue
		}
		if _, ok := byID[ts.ParentID]; !ok {
			t.Fatalf("span %s (proc %s) has dangling parent %016x", ts.Name, ts.Proc, ts.ParentID)
		}
	}
}

// failBackend rejects every Kernel call immediately with a typed error.
type failBackend struct {
	serve.Backend
}

func (b *failBackend) Kernel(ctx context.Context, req store.KernelRequest) (*store.KernelResult, error) {
	return nil, fmt.Errorf("store: %w: injected failure", store.ErrBadRequest)
}

// stallBackend parks every Kernel call until its context is canceled.
type stallBackend struct {
	serve.Backend
}

func (b *stallBackend) Kernel(ctx context.Context, req store.KernelRequest) (*store.KernelResult, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

// wrapShard boots a wire server over wrap(chunked backend).
func wrapShard(t *testing.T, shape, tile tensor.Shape, wrap func(serve.Backend) serve.Backend) string {
	t.Helper()
	reg := obs.New()
	c, err := store.NewChunked(fsim.NewPerlmutterSim(), "shard", core.CSF, shape, tile, store.WithObs(reg))
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(wrap(serve.ChunkedBackend(c)), serve.Config{Obs: reg})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

// TestScatterCancelsOnFirstError: when one shard fails a scatter-gather
// fatally, the router must cancel the outstanding sub-requests instead
// of waiting them out, and must report the root-cause error rather than
// the cancellation it induced.
func TestScatterCancelsOnFirstError(t *testing.T) {
	shape := tensor.Shape{16, 16}
	tile := tensor.Shape{8, 8}
	addrs := []string{
		wrapShard(t, shape, tile, func(b serve.Backend) serve.Backend { return &failBackend{Backend: b} }),
		wrapShard(t, shape, tile, func(b serve.Backend) serve.Backend { return &stallBackend{Backend: b} }),
	}
	router, err := serve.NewRouter(addrs, obs.New())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { router.Close() })

	// KernelSumAll broadcasts to every shard unconditionally, so the
	// failing and the stalled shard are both guaranteed in the scatter
	// (region queries only reach the shards owning overlapping tiles).
	start := time.Now()
	done := make(chan error, 1)
	go func() {
		_, err := router.Kernel(context.Background(), store.KernelRequest{Op: store.KernelSumAll})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, store.ErrBadRequest) {
			t.Fatalf("scatter error = %v, want the injected bad-request root cause", err)
		}
		if errors.Is(err, context.Canceled) {
			t.Fatalf("scatter reported the induced cancellation, not the root cause: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("scatter did not return: failing shard did not cancel the stalled one")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("scatter took %v, want prompt cancellation", elapsed)
	}

	// The caller's own cancellation must still surface as such.
	cctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	_, err = router.Kernel(cctx, store.KernelRequest{Op: store.KernelSumAll})
	if err == nil || !errors.Is(err, context.Canceled) && !errors.Is(err, store.ErrBadRequest) {
		t.Fatalf("canceled scatter error = %v", err)
	}
}
