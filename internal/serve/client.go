package serve

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"sparseart/internal/obs"
	"sparseart/internal/store"
	"sparseart/internal/tensor"
	"sparseart/internal/wire"
)

// Client drives one wire-protocol connection. It is safe for
// concurrent use: requests pipeline on the single connection, matched
// to responses by request id, so N goroutines sharing one Client see N
// requests in flight at once.
type Client struct {
	conn net.Conn

	wmu sync.Mutex // serializes request frames

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan clientResp
	readErr error // set once the read loop dies; nil while healthy
	done    chan struct{}
}

type clientResp struct {
	typ     uint8
	payload []byte
}

// Dial connects to a wire-protocol server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:    conn,
		pending: map[uint64]chan clientResp{},
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// Close tears down the connection; in-flight calls fail.
func (c *Client) Close() error {
	return c.conn.Close()
}

// readLoop dispatches response frames to their waiting calls.
func (c *Client) readLoop() {
	for {
		typ, id, payload, err := wire.ReadFrame(c.conn)
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			c.mu.Unlock()
			close(c.done)
			return
		}
		c.mu.Lock()
		ch := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if ch != nil {
			ch <- clientResp{typ: typ, payload: payload}
		}
	}
}

// roundTrip sends one request and waits for its response or ctx. When
// ctx carries a sampled trace, a client.request{op} span wraps the
// round trip and its trace context rides the frame to the server, so
// the remote serve.request span links back to this one.
func (c *Client) roundTrip(ctx context.Context, typ uint8, payload []byte) ([]byte, error) {
	sp, ctx := obs.Global().StartCtx(ctx, obs.Name("client.request", "op", opName(typ)))
	tc := sp.TraceContext()
	if !tc.Valid() {
		// No local client span (global obs disabled) — still forward the
		// trace riding ctx so downstream processes keep recording.
		tc, _ = obs.TraceFrom(ctx)
	}
	resp, err := c.roundTripTrace(ctx, typ, tc, payload)
	if err != nil && sp.Sampled() {
		sp.SetAttrStr("err", err.Error())
	}
	sp.End()
	return resp, err
}

// roundTripTrace writes the request frame carrying tc and waits for
// the matching response or ctx.
func (c *Client) roundTripTrace(ctx context.Context, typ uint8, tc obs.TraceContext, payload []byte) ([]byte, error) {
	ch := make(chan clientResp, 1)
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return nil, connErr(err)
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err := wire.WriteFrameTrace(c.conn, typ, id, tc, payload)
	c.wmu.Unlock()
	if err != nil {
		c.forget(id)
		return nil, connErr(err)
	}

	select {
	case resp := <-ch:
		if resp.typ == wire.MsgErr {
			return nil, wire.DecodeError(resp.payload)
		}
		return resp.payload, nil
	case <-ctx.Done():
		c.forget(id)
		return nil, ctx.Err()
	case <-c.done:
		// The read loop may have delivered just before dying.
		select {
		case resp := <-ch:
			if resp.typ == wire.MsgErr {
				return nil, wire.DecodeError(resp.payload)
			}
			return resp.payload, nil
		default:
		}
		c.forget(id)
		c.mu.Lock()
		err := c.readErr
		c.mu.Unlock()
		return nil, connErr(err)
	}
}

// forget abandons a pending request id.
func (c *Client) forget(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// connErr types a dead-connection failure so the router can classify
// it as shard unavailability.
func connErr(err error) error {
	return fmt.Errorf("serve: %w: connection: %v", wire.ErrShardUnavailable, err)
}

// deadlineOf extracts the relative deadline a request should carry.
func deadlineOf(ctx context.Context) (time.Duration, error) {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0, nil
	}
	d := time.Until(dl)
	if d <= 0 {
		return 0, context.DeadlineExceeded
	}
	return d, nil
}

// Query answers a store.QueryRequest remotely.
func (c *Client) Query(ctx context.Context, req store.QueryRequest) (*store.Result, *store.ReadReport, error) {
	d, err := deadlineOf(ctx)
	if err != nil {
		return nil, nil, err
	}
	payload, err := c.roundTrip(ctx, wire.MsgQuery, (&wire.Query{Deadline: d, Req: req}).Encode())
	if err != nil {
		return nil, nil, err
	}
	res, err := wire.DecodeQueryResult(payload)
	if err != nil {
		return nil, nil, err
	}
	return res.Result, res.Report, nil
}

// ReadPoints answers a probe with values and found marks aligned to
// the probe order.
func (c *Client) ReadPoints(ctx context.Context, probe *tensor.Coords) ([]float64, []bool, *store.ReadReport, error) {
	d, err := deadlineOf(ctx)
	if err != nil {
		return nil, nil, nil, err
	}
	payload, err := c.roundTrip(ctx, wire.MsgReadPoints, (&wire.ReadPoints{Deadline: d, Probe: probe}).Encode())
	if err != nil {
		return nil, nil, nil, err
	}
	res, err := wire.DecodePointsResult(payload)
	if err != nil {
		return nil, nil, nil, err
	}
	return res.Values, res.Found, res.Report, nil
}

// Write commits one fragment of points.
func (c *Client) Write(ctx context.Context, coords *tensor.Coords, values []float64) (*store.WriteReport, error) {
	d, err := deadlineOf(ctx)
	if err != nil {
		return nil, err
	}
	payload, err := c.roundTrip(ctx, wire.MsgWrite, (&wire.Write{Deadline: d, Coords: coords, Values: values}).Encode())
	if err != nil {
		return nil, err
	}
	return wire.DecodeWriteReport(payload)
}

// WriteBatch runs the streaming ingest remotely.
func (c *Client) WriteBatch(ctx context.Context, batches []store.Batch, workers int) ([]*store.WriteReport, error) {
	d, err := deadlineOf(ctx)
	if err != nil {
		return nil, err
	}
	payload, err := c.roundTrip(ctx, wire.MsgWriteBatch, (&wire.WriteBatch{Deadline: d, Workers: workers, Batches: batches}).Encode())
	if err != nil {
		return nil, err
	}
	return wire.DecodeWriteReports(payload)
}

// DeleteRegion commits a region tombstone.
func (c *Client) DeleteRegion(ctx context.Context, region tensor.Region) (*store.WriteReport, error) {
	d, err := deadlineOf(ctx)
	if err != nil {
		return nil, err
	}
	payload, err := c.roundTrip(ctx, wire.MsgDelete, (&wire.Delete{Deadline: d, Region: region}).Encode())
	if err != nil {
		return nil, err
	}
	return wire.DecodeWriteReport(payload)
}

// Kernel runs a push-down kernel remotely.
func (c *Client) Kernel(ctx context.Context, req store.KernelRequest) (*store.KernelResult, error) {
	d, err := deadlineOf(ctx)
	if err != nil {
		return nil, err
	}
	payload, err := c.roundTrip(ctx, wire.MsgKernel, (&wire.Kernel{Deadline: d, Req: req}).Encode())
	if err != nil {
		return nil, err
	}
	return wire.DecodeKernelResult(payload)
}

// Info fetches the backend's identity.
func (c *Client) Info(ctx context.Context) (*wire.Info, error) {
	d, err := deadlineOf(ctx)
	if err != nil {
		return nil, err
	}
	payload, err := c.roundTrip(ctx, wire.MsgInfo, wire.EncodeDeadline(d))
	if err != nil {
		return nil, err
	}
	return wire.DecodeInfo(payload)
}

// ObsSnapshot fetches and decodes the backend's telemetry snapshot.
func (c *Client) ObsSnapshot(ctx context.Context) (*obs.Snapshot, error) {
	d, err := deadlineOf(ctx)
	if err != nil {
		return nil, err
	}
	payload, err := c.roundTrip(ctx, wire.MsgObs, wire.EncodeDeadline(d))
	if err != nil {
		return nil, err
	}
	return obs.DecodeSnapshot(payload)
}

// Ping round-trips an empty request.
func (c *Client) Ping(ctx context.Context) error {
	d, err := deadlineOf(ctx)
	if err != nil {
		return err
	}
	_, err = c.roundTrip(ctx, wire.MsgPing, wire.EncodeDeadline(d))
	return err
}
