package serve

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"sparseart/internal/core"
	"sparseart/internal/obs"
	"sparseart/internal/store"
	"sparseart/internal/tensor"
	"sparseart/internal/wire"
)

// virtualNodes is how many ring positions each shard claims; more
// positions smooth the key distribution.
const virtualNodes = 64

// Router-level span names: one per routed request kind, wrapping the
// whole scatter-gather so a stitched trace shows fan-out under them.
const (
	obsRouterQuery  = "router.query"
	obsRouterKernel = "router.kernel"
)

// Router consistent-hashes tile coordinates across shard servers and
// presents the same Backend surface a single store does: scatter-
// gather region reads merge in linear-address order (byte-identical to
// one local Chunked store over the same writes), WriteBatch fans out
// per shard over the streaming ingest API, and telemetry scrapes
// absorb every shard's counters. Each shard must host a Chunked store
// with the same global shape, tile extents, and kind — the router
// checks at construction.
type Router struct {
	shape tensor.Shape
	tile  tensor.Shape
	kind  uint8    // core.Kind of every shard
	grid  []uint64 // tiles per dimension (ceil(shape/tile))

	addrs   []string
	clients []*Client
	ring    []ringSlot
	reg     *obs.Registry

	obsMu sync.Mutex
	prev  []*obs.Snapshot // last absorbed snapshot per shard
}

type ringSlot struct {
	hash  uint64
	shard int
}

// NewRouter dials every shard, verifies they agree on shape, tile, and
// kind, and builds the hash ring. reg receives the router's own
// metrics plus absorbed shard deltas; nil uses the process-global
// registry.
func NewRouter(addrs []string, reg *obs.Registry) (*Router, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("serve: %w: router needs at least one shard", store.ErrBadRequest)
	}
	if reg == nil {
		reg = obs.Global()
	}
	r := &Router{addrs: addrs, reg: reg, prev: make([]*obs.Snapshot, len(addrs))}
	for i, addr := range addrs {
		c, err := Dial(addr)
		if err != nil {
			r.closeClients()
			return nil, fmt.Errorf("serve: %w: shard %d (%s): %v", wire.ErrShardUnavailable, i, addr, err)
		}
		r.clients = append(r.clients, c)
		info, err := c.Info(context.Background())
		if err != nil {
			r.closeClients()
			return nil, fmt.Errorf("serve: shard %d (%s) info: %w", i, addr, err)
		}
		if len(info.Tile) == 0 {
			r.closeClients()
			return nil, fmt.Errorf("serve: %w: shard %d (%s) hosts an untiled store", store.ErrBadRequest, i, addr)
		}
		if i == 0 {
			r.shape, r.tile, r.kind = info.Shape, info.Tile, uint8(info.Kind)
		} else if !r.shape.Equal(info.Shape) || !r.tile.Equal(info.Tile) || r.kind != uint8(info.Kind) {
			r.closeClients()
			return nil, fmt.Errorf("serve: %w: shard %d (%s) disagrees on shape/tile/kind", store.ErrBadRequest, i, addr)
		}
	}
	r.grid = make([]uint64, r.shape.Dims())
	for d := range r.grid {
		r.grid[d] = (r.shape[d] + r.tile[d] - 1) / r.tile[d]
	}
	for i, addr := range addrs {
		for v := 0; v < virtualNodes; v++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "%s#%d", addr, v)
			r.ring = append(r.ring, ringSlot{hash: h.Sum64(), shard: i})
		}
	}
	sort.Slice(r.ring, func(i, j int) bool {
		if r.ring[i].hash != r.ring[j].hash {
			return r.ring[i].hash < r.ring[j].hash
		}
		return r.ring[i].shard < r.ring[j].shard
	})
	r.reg.Gauge("router.shards").Set(int64(len(addrs)))
	return r, nil
}

// Close tears down every shard connection.
func (r *Router) Close() error {
	r.closeClients()
	return nil
}

func (r *Router) closeClients() {
	for _, c := range r.clients {
		c.Close()
	}
}

// Shards returns the shard addresses in ring order of declaration.
func (r *Router) Shards() []string { return r.addrs }

// kindName labels the shards' organization for spans and slow-log rows.
func (r *Router) kindName() string { return core.Kind(r.kind).String() }

// owner maps a tile index to its shard by consistent hashing the tile
// key ("t-0-1"), the same string that names the tile directory.
func (r *Router) owner(idx []uint64) int {
	var b strings.Builder
	b.WriteString("t")
	for _, v := range idx {
		fmt.Fprintf(&b, "-%d", v)
	}
	h := fnv.New64a()
	h.Write([]byte(b.String()))
	key := h.Sum64()
	i := sort.Search(len(r.ring), func(i int) bool { return r.ring[i].hash >= key })
	if i == len(r.ring) {
		i = 0
	}
	return r.ring[i].shard
}

// tileOf returns the per-dimension tile index of a global point.
func (r *Router) tileOf(p []uint64) []uint64 {
	idx := make([]uint64, len(p))
	for d := range p {
		idx[d] = p[d] / r.tile[d]
	}
	return idx
}

// shardErr classifies a shard call failure: typed protocol errors and
// context errors pass through, transport failures become
// ErrShardUnavailable.
func shardErr(i int, addr string, err error) error {
	if err == nil {
		return nil
	}
	var we *wire.Error
	if errors.As(err, &we) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err // the shard (or the caller) said something specific
	}
	return fmt.Errorf("serve: %w: shard %d (%s): %v", wire.ErrShardUnavailable, i, addr, err)
}

// regionShards returns the shards owning at least one tile overlapping
// region, by walking the overlapped tile grid.
func (r *Router) regionShards(region tensor.Region) []int {
	lo := make([]uint64, len(r.tile))
	hi := make([]uint64, len(r.tile))
	for d := range r.tile {
		lo[d] = region.Start[d] / r.tile[d]
		end := region.Start[d] + region.Size[d] - 1
		if region.Size[d] == 0 || end < region.Start[d] {
			end = region.Start[d] // empty or overflowing extent: clamp
		}
		hi[d] = end / r.tile[d]
		if r.grid[d] > 0 && hi[d] >= r.grid[d] {
			hi[d] = r.grid[d] - 1
		}
	}
	seen := map[int]bool{}
	idx := append([]uint64(nil), lo...)
	for {
		seen[r.owner(idx)] = true
		if len(seen) == len(r.clients) {
			break // every shard already in play
		}
		d := len(idx) - 1
		for d >= 0 {
			idx[d]++
			if idx[d] <= hi[d] {
				break
			}
			idx[d] = lo[d]
			d--
		}
		if d < 0 {
			break
		}
	}
	shards := make([]int, 0, len(seen))
	for i := range seen {
		shards = append(shards, i)
	}
	sort.Ints(shards)
	return shards
}

// scatter runs fn once per listed shard concurrently. The first shard
// to fail fatally cancels the context every other sub-request runs
// under, so siblings stop probing fragments for an answer the caller
// will never see. The error returned is the root cause: cancellations
// induced by a sibling's failure are reported only if no shard produced
// a real error of its own (and never when the caller's own ctx ended).
func (r *Router) scatter(ctx context.Context, shards []int, op string, fn func(ctx context.Context, i int) error) error {
	r.reg.Counter("router.scatter", "op", op).Add(int64(len(shards)))
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, len(shards))
	for k, i := range shards {
		wg.Add(1)
		go func(k, i int) {
			defer wg.Done()
			if err := shardErr(i, r.addrs[i], fn(cctx, i)); err != nil {
				errs[k] = err
				cancel() // fatal for the whole request: stop the siblings
			}
		}(k, i)
	}
	wg.Wait()
	var induced error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) && ctx.Err() == nil {
			// This shard stopped because a sibling failed first; keep
			// looking for the failure that caused it.
			if induced == nil {
				induced = err
			}
			continue
		}
		r.reg.Counter("router.shard.errors", "op", op).Inc()
		return err
	}
	if induced != nil {
		r.reg.Counter("router.shard.errors", "op", op).Inc()
		return induced
	}
	return nil
}

// allShards lists every shard index.
func (r *Router) allShards() []int {
	shards := make([]int, len(r.clients))
	for i := range shards {
		shards[i] = i
	}
	return shards
}

// Info aggregates shard identities.
func (r *Router) Info(ctx context.Context) (*wire.Info, error) {
	infos := make([]*wire.Info, len(r.clients))
	err := r.scatter(ctx, r.allShards(), "info", func(ctx context.Context, i int) error {
		info, err := r.clients[i].Info(ctx)
		infos[i] = info
		return err
	})
	if err != nil {
		return nil, err
	}
	out := &wire.Info{Kind: infos[0].Kind, Shape: r.shape, Tile: r.tile}
	for _, info := range infos {
		out.Fragments += info.Fragments
		out.Epoch += info.Epoch
		out.Tiles += info.Tiles
	}
	return out, nil
}

// Query scatter-gathers a read. Probe targets partition per point by
// owning tile; region targets broadcast the whole region to every
// shard owning an overlapping tile — each shard answers from the tiles
// it materialized, which are disjoint, so the merged result is exactly
// what one local Chunked store would return.
func (r *Router) Query(ctx context.Context, req store.QueryRequest) (*store.Result, *store.ReadReport, error) {
	sp, ctx := r.reg.StartCtx(ctx, obsRouterQuery)
	if sp.Sampled() {
		sp.SetAttrStr("strategy", req.Strategy.String())
	}
	res, rep, err := r.queryAt(ctx, req)
	store.FinishRequestSpan(r.reg, ctx, sp, obsRouterQuery, r.kindName(), store.ReadCost(rep), err)
	return res, rep, err
}

// queryAt dispatches the routed read under the router.query span.
func (r *Router) queryAt(ctx context.Context, req store.QueryRequest) (*store.Result, *store.ReadReport, error) {
	if req.AsOf != store.AsOfLatest {
		if req.Probe == nil && req.Region == nil {
			return nil, nil, fmt.Errorf("store: %w: exactly one of Probe or Region must be set", store.ErrBadRequest)
		}
		return nil, nil, fmt.Errorf("serve: %w: as-of reads are not supported on routed stores", store.ErrBadRequest)
	}
	if req.Region != nil {
		if req.Probe != nil {
			return nil, nil, fmt.Errorf("store: %w: exactly one of Probe or Region must be set", store.ErrBadRequest)
		}
		if req.Region.Dims() != r.shape.Dims() {
			return nil, nil, fmt.Errorf("store: %w: %d-dim region for %d-dim store", store.ErrShapeMismatch, req.Region.Dims(), r.shape.Dims())
		}
		shards := r.regionShards(*req.Region)
		results := make([]*store.Result, len(r.clients))
		reports := make([]*store.ReadReport, len(r.clients))
		err := r.scatter(ctx, shards, "query", func(ctx context.Context, i int) error {
			res, rep, err := r.clients[i].Query(ctx, req)
			results[i], reports[i] = res, rep
			return err
		})
		if err != nil {
			return nil, nil, err
		}
		return mergeResults(r.shape.Dims(), len(shards), results, reports)
	}
	if req.Probe == nil {
		return nil, nil, fmt.Errorf("store: %w: exactly one of Probe or Region must be set", store.ErrBadRequest)
	}
	if req.Probe.Dims() != r.shape.Dims() {
		return nil, nil, fmt.Errorf("store: %w: %d-dim probe for %d-dim store", store.ErrShapeMismatch, req.Probe.Dims(), r.shape.Dims())
	}
	parts := r.partitionPoints(req.Probe, nil)
	results := make([]*store.Result, len(r.clients))
	reports := make([]*store.ReadReport, len(r.clients))
	var shards []int
	for i, part := range parts {
		if part != nil {
			shards = append(shards, i)
		}
	}
	err := r.scatter(ctx, shards, "query", func(ctx context.Context, i int) error {
		sub := req
		sub.Probe = parts[i].coords
		res, rep, err := r.clients[i].Query(ctx, sub)
		results[i], reports[i] = res, rep
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	return mergeResults(r.shape.Dims(), len(shards), results, reports)
}

// pointPart is one shard's slice of a partitioned point set.
type pointPart struct {
	coords *tensor.Coords
	values []float64 // writes only
	srcIdx []int     // original positions (ReadPoints reassembly)
}

// partitionPoints splits points (and optionally their values) by
// owning shard; nil entries mean the shard got no points.
func (r *Router) partitionPoints(coords *tensor.Coords, values []float64) []*pointPart {
	parts := make([]*pointPart, len(r.clients))
	for i := 0; i < coords.Len(); i++ {
		p := coords.At(i)
		s := r.owner(r.tileOf(p))
		part := parts[s]
		if part == nil {
			part = &pointPart{coords: tensor.NewCoords(coords.Dims(), 0)}
			parts[s] = part
		}
		part.coords.Append(p...)
		if values != nil {
			part.values = append(part.values, values[i])
		}
		part.srcIdx = append(part.srcIdx, i)
	}
	return parts
}

// mergeResults concatenates per-shard sorted results and re-sorts by
// coordinate tuple (row-major linear order) — tiles are disjoint
// across shards, so no deduplication is needed and the order matches a
// single local Chunked read exactly.
func mergeResults(dims, shards int, results []*store.Result, reports []*store.ReadReport) (*store.Result, *store.ReadReport, error) {
	total := 0
	for _, res := range results {
		if res != nil {
			total += res.Coords.Len()
		}
	}
	coords := tensor.NewCoords(dims, total)
	values := make([]float64, 0, total)
	for _, res := range results {
		if res == nil {
			continue
		}
		coords.AppendFlat(res.Coords.Flat())
		values = append(values, res.Values...)
	}
	order := make([]int, coords.Len())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := coords.At(order[a]), coords.At(order[b])
		for d := range pa {
			if pa[d] != pb[d] {
				return pa[d] < pb[d]
			}
		}
		return false
	})
	out := tensor.NewCoords(dims, coords.Len())
	vals := make([]float64, 0, coords.Len())
	for _, i := range order {
		out.Append(coords.At(i)...)
		vals = append(vals, values[i])
	}
	rep := &store.ReadReport{Shards: shards}
	for _, sub := range reports {
		if sub == nil {
			continue
		}
		rep.IO += sub.IO
		rep.Extract += sub.Extract
		rep.Probe += sub.Probe
		rep.Merge += sub.Merge
		rep.Fragments += sub.Fragments
		rep.Probed += sub.Probed
		rep.Found += sub.Found
		rep.Scans += sub.Scans
		rep.Candidates += sub.Candidates
		rep.FilterSkipped += sub.FilterSkipped
		rep.CacheHits += sub.CacheHits
		rep.CacheMisses += sub.CacheMisses
		rep.BytesRead += sub.BytesRead
		rep.Epoch += sub.Epoch
	}
	return &store.Result{Coords: out, Values: vals}, rep, nil
}

// ReadPoints partitions the probe per shard and reassembles the
// aligned values and found marks in the original order.
func (r *Router) ReadPoints(ctx context.Context, probe *tensor.Coords) ([]float64, []bool, *store.ReadReport, error) {
	if probe.Dims() != r.shape.Dims() {
		return nil, nil, nil, fmt.Errorf("store: %w: %d-dim probe for %d-dim store", store.ErrShapeMismatch, probe.Dims(), r.shape.Dims())
	}
	parts := r.partitionPoints(probe, nil)
	var shards []int
	for i, part := range parts {
		if part != nil {
			shards = append(shards, i)
		}
	}
	vals := make([]float64, probe.Len())
	found := make([]bool, probe.Len())
	reports := make([]*store.ReadReport, len(r.clients))
	var mu sync.Mutex
	err := r.scatter(ctx, shards, "read_points", func(ctx context.Context, i int) error {
		v, f, rep, err := r.clients[i].ReadPoints(ctx, parts[i].coords)
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		reports[i] = rep
		for k, src := range parts[i].srcIdx {
			vals[src] = v[k]
			found[src] = f[k]
		}
		return nil
	})
	if err != nil {
		return nil, nil, nil, err
	}
	rep := &store.ReadReport{Shards: len(shards)}
	for _, sub := range reports {
		if sub == nil {
			continue
		}
		rep.Fragments += sub.Fragments
		rep.Probed += sub.Probed
		rep.Found += sub.Found
		rep.Scans += sub.Scans
		rep.IO += sub.IO
		rep.Extract += sub.Extract
		rep.Probe += sub.Probe
		rep.Merge += sub.Merge
		rep.Candidates += sub.Candidates
		rep.FilterSkipped += sub.FilterSkipped
		rep.CacheHits += sub.CacheHits
		rep.CacheMisses += sub.CacheMisses
		rep.BytesRead += sub.BytesRead
		rep.Epoch += sub.Epoch
	}
	return vals, found, rep, nil
}

// Write partitions one fragment's points per owning shard and commits
// each slice on its shard.
func (r *Router) Write(ctx context.Context, coords *tensor.Coords, values []float64) (*store.WriteReport, error) {
	if coords.Dims() != r.shape.Dims() {
		return nil, fmt.Errorf("store: %w: %d-dim coords for %d-dim store", store.ErrShapeMismatch, coords.Dims(), r.shape.Dims())
	}
	if coords.Len() != len(values) {
		return nil, fmt.Errorf("store: %w: %d coords, %d values", store.ErrShapeMismatch, coords.Len(), len(values))
	}
	if !coords.InShape(r.shape) {
		return nil, fmt.Errorf("store: %w: coordinate outside shape %v", store.ErrShapeMismatch, r.shape)
	}
	parts := r.partitionPoints(coords, values)
	var shards []int
	for i, part := range parts {
		if part != nil {
			shards = append(shards, i)
		}
	}
	reps := make([]*store.WriteReport, len(r.clients))
	err := r.scatter(ctx, shards, "write", func(ctx context.Context, i int) error {
		rep, err := r.clients[i].Write(ctx, parts[i].coords, parts[i].values)
		reps[i] = rep
		return err
	})
	if err != nil {
		return nil, err
	}
	return mergeWriteReports(reps), nil
}

// mergeWriteReports sums per-shard write reports into one.
func mergeWriteReports(reps []*store.WriteReport) *store.WriteReport {
	out := &store.WriteReport{}
	for _, rep := range reps {
		if rep == nil {
			continue
		}
		out.Build += rep.Build
		out.Reorg += rep.Reorg
		out.Write += rep.Write
		out.Others += rep.Others
		out.Bytes += rep.Bytes
		out.NNZ += rep.NNZ
		out.Epoch += rep.Epoch
		if out.Name == "" {
			out.Name = rep.Name
		}
	}
	return out
}

// WriteBatch fans the batches out per shard over the streaming ingest
// API: each shard receives its slice of every batch as one WriteBatch
// call (batch order preserved), and the returned reports line up with
// the caller's batches, merging the per-shard pieces of each.
func (r *Router) WriteBatch(ctx context.Context, batches []store.Batch, workers int) ([]*store.WriteReport, error) {
	type shardBatch struct {
		src     []int // original batch index per sub-batch
		batches []store.Batch
	}
	perShard := make([]*shardBatch, len(r.clients))
	for bi, b := range batches {
		if b.Coords == nil || b.Coords.Dims() != r.shape.Dims() {
			return nil, fmt.Errorf("store: %w: batch %d dims", store.ErrShapeMismatch, bi)
		}
		parts := r.partitionPoints(b.Coords, b.Values)
		for i, part := range parts {
			if part == nil {
				continue
			}
			sb := perShard[i]
			if sb == nil {
				sb = &shardBatch{}
				perShard[i] = sb
			}
			sb.src = append(sb.src, bi)
			sb.batches = append(sb.batches, store.Batch{Coords: part.coords, Values: part.values})
		}
	}
	var shards []int
	for i, sb := range perShard {
		if sb != nil {
			shards = append(shards, i)
		}
	}
	merged := make([][]*store.WriteReport, len(batches))
	var mu sync.Mutex
	err := r.scatter(ctx, shards, "write_batch", func(ctx context.Context, i int) error {
		reps, err := r.clients[i].WriteBatch(ctx, perShard[i].batches, workers)
		mu.Lock()
		for k, rep := range reps {
			if k < len(perShard[i].src) {
				src := perShard[i].src[k]
				merged[src] = append(merged[src], rep)
			}
		}
		mu.Unlock()
		return err
	})
	out := make([]*store.WriteReport, 0, len(batches))
	for _, reps := range merged {
		if len(reps) == 0 {
			break // committed prefix only, matching local semantics
		}
		out = append(out, mergeWriteReports(reps))
	}
	if err != nil {
		return out, err
	}
	return out, nil
}

// DeleteRegion broadcasts the tombstone to every shard owning an
// overlapping tile.
func (r *Router) DeleteRegion(ctx context.Context, region tensor.Region) (*store.WriteReport, error) {
	if region.Dims() != r.shape.Dims() {
		return nil, fmt.Errorf("store: %w: %d-dim region for %d-dim store", store.ErrShapeMismatch, region.Dims(), r.shape.Dims())
	}
	shards := r.regionShards(region)
	reps := make([]*store.WriteReport, len(r.clients))
	err := r.scatter(ctx, shards, "delete", func(ctx context.Context, i int) error {
		rep, err := r.clients[i].DeleteRegion(ctx, region)
		reps[i] = rep
		return err
	})
	if err != nil {
		return nil, err
	}
	return mergeWriteReports(reps), nil
}

// Kernel scatter-gathers the additive push-down kernels; per-shard
// partials sum exactly because shard tiles are disjoint. SpMV and TTV
// need cross-tile accumulators and are rejected, as on Chunked.
func (r *Router) Kernel(ctx context.Context, req store.KernelRequest) (*store.KernelResult, error) {
	sp, ctx := r.reg.StartCtx(ctx, obsRouterKernel)
	if sp.Sampled() {
		sp.SetAttrStr("kernel", req.Op.String())
	}
	res, err := r.kernelAt(ctx, req)
	var rep *store.PushReport
	if res != nil {
		rep = res.Report
	}
	store.FinishRequestSpan(r.reg, ctx, sp, obsRouterKernel, r.kindName(), store.PushCost(rep), err)
	return res, err
}

// kernelAt dispatches the routed kernel under the router.kernel span.
func (r *Router) kernelAt(ctx context.Context, req store.KernelRequest) (*store.KernelResult, error) {
	switch req.Op {
	case store.KernelSumAll, store.KernelLiveNNZ, store.KernelNNZPerSlice:
	case store.KernelSumRegion:
	default:
		return nil, fmt.Errorf("serve: %w: kernel %v is not supported on routed stores", store.ErrBadRequest, req.Op)
	}
	shards := r.allShards()
	if req.Op == store.KernelSumRegion && req.Region != nil {
		if req.Region.Dims() != r.shape.Dims() {
			return nil, fmt.Errorf("store: %w: %d-dim region for %d-dim store", store.ErrShapeMismatch, req.Region.Dims(), r.shape.Dims())
		}
		shards = r.regionShards(*req.Region)
	}
	results := make([]*store.KernelResult, len(r.clients))
	err := r.scatter(ctx, shards, "kernel", func(ctx context.Context, i int) error {
		res, err := r.clients[i].Kernel(ctx, req)
		results[i] = res
		return err
	})
	if err != nil {
		return nil, err
	}
	out := &store.KernelResult{Report: &store.PushReport{}}
	for _, res := range results {
		if res == nil {
			continue
		}
		if out.Values == nil {
			out.Values = make([]float64, len(res.Values))
			out.Shape = res.Shape
		}
		for k, v := range res.Values {
			if k < len(out.Values) {
				out.Values[k] += v
			}
		}
		out.Report.Fragments += res.Report.Fragments
		out.Report.Skipped += res.Report.Skipped
		out.Report.Cells += res.Report.Cells
		out.Report.Shadowed += res.Report.Shadowed
		out.Report.Dead += res.Report.Dead
		out.Report.Epoch += res.Report.Epoch
	}
	return out, nil
}

// RefreshObs pulls every shard's telemetry snapshot, absorbs the delta
// since the previous pull into the router's registry (monotonic: each
// shard increment lands exactly once), and remembers the new baseline.
// This is the obs/serve OnScrape hook — a scrape of the router's
// /metrics sees the whole fleet.
func (r *Router) RefreshObs(ctx context.Context) error {
	snaps := make([]*obs.Snapshot, len(r.clients))
	err := r.scatter(ctx, r.allShards(), "obs", func(ctx context.Context, i int) error {
		snap, err := r.clients[i].ObsSnapshot(ctx)
		snaps[i] = snap
		return err
	})
	r.obsMu.Lock()
	defer r.obsMu.Unlock()
	for i, snap := range snaps {
		if snap == nil {
			continue // unreachable shard: keep its old baseline
		}
		if r.prev[i] != nil {
			r.reg.Absorb(obs.Delta(r.prev[i], snap))
		} else {
			r.reg.Absorb(snap)
		}
		r.prev[i] = snap
	}
	return err
}

// ObsSnapshot refreshes from the shards and returns the aggregated
// registry snapshot — Backend's telemetry surface, so a served router
// answers MsgObs with fleet-wide counters.
func (r *Router) ObsSnapshot(ctx context.Context) ([]byte, error) {
	if err := r.RefreshObs(ctx); err != nil {
		return nil, err
	}
	return r.reg.Snapshot().JSON()
}

var _ Backend = (*Router)(nil)
