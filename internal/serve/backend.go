// Package serve turns a store into a network data server: a Server
// speaks the internal/wire protocol over any net.Listener, a Client
// drives it with pipelined, deadline-carrying requests, and a Router
// consistent-hashes tile coordinates across shard servers while
// presenting the same Backend surface — so a router can itself be
// served, and clients cannot tell one process from a fleet.
package serve

import (
	"context"
	"fmt"

	"sparseart/internal/store"
	"sparseart/internal/tensor"
	"sparseart/internal/wire"
)

// Backend is what a Server serves: the unified context-aware request
// surface of internal/store, plus identity (Info) and telemetry
// (ObsSnapshot). Store, Chunked, and Router all satisfy it through the
// adapters below.
type Backend interface {
	Info(ctx context.Context) (*wire.Info, error)
	Query(ctx context.Context, req store.QueryRequest) (*store.Result, *store.ReadReport, error)
	ReadPoints(ctx context.Context, probe *tensor.Coords) ([]float64, []bool, *store.ReadReport, error)
	Write(ctx context.Context, coords *tensor.Coords, values []float64) (*store.WriteReport, error)
	WriteBatch(ctx context.Context, batches []store.Batch, workers int) ([]*store.WriteReport, error)
	DeleteRegion(ctx context.Context, region tensor.Region) (*store.WriteReport, error)
	Kernel(ctx context.Context, req store.KernelRequest) (*store.KernelResult, error)
	// ObsSnapshot returns the backend's telemetry snapshot as obs
	// snapshot JSON (obs.DecodeSnapshot inverts it).
	ObsSnapshot(ctx context.Context) ([]byte, error)
}

// storeBackend adapts a flat *store.Store.
type storeBackend struct{ s *store.Store }

// StoreBackend serves a flat (untiled) store.
func StoreBackend(s *store.Store) Backend { return storeBackend{s} }

func (b storeBackend) Info(context.Context) (*wire.Info, error) {
	return &wire.Info{
		Kind:      b.s.Kind(),
		Shape:     b.s.Shape(),
		Fragments: uint64(b.s.Fragments()),
		Epoch:     b.s.Epoch(),
	}, nil
}

func (b storeBackend) Query(ctx context.Context, req store.QueryRequest) (*store.Result, *store.ReadReport, error) {
	return b.s.Query(ctx, req)
}

func (b storeBackend) ReadPoints(ctx context.Context, probe *tensor.Coords) ([]float64, []bool, *store.ReadReport, error) {
	return b.s.QueryPoints(ctx, probe)
}

func (b storeBackend) Write(ctx context.Context, coords *tensor.Coords, values []float64) (*store.WriteReport, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return b.s.Write(coords, values)
}

func (b storeBackend) WriteBatch(ctx context.Context, batches []store.Batch, workers int) ([]*store.WriteReport, error) {
	return collectBatch(ctx, batches, workers, b.s.WriteBatchContext)
}

func (b storeBackend) DeleteRegion(ctx context.Context, region tensor.Region) (*store.WriteReport, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return b.s.DeleteRegion(region)
}

func (b storeBackend) Kernel(ctx context.Context, req store.KernelRequest) (*store.KernelResult, error) {
	return b.s.Kernel(ctx, req)
}

func (b storeBackend) ObsSnapshot(context.Context) ([]byte, error) {
	return b.s.Obs().Snapshot().JSON()
}

// chunkedBackend adapts a tiled *store.Chunked — the shard-side
// backend.
type chunkedBackend struct{ c *store.Chunked }

// ChunkedBackend serves a chunked (tiled) store.
func ChunkedBackend(c *store.Chunked) Backend { return chunkedBackend{c} }

func (b chunkedBackend) Info(context.Context) (*wire.Info, error) {
	return &wire.Info{
		Kind:      b.c.Kind(),
		Shape:     b.c.Shape(),
		Tile:      b.c.Tile(),
		Fragments: uint64(b.c.Fragments()),
		Epoch:     b.c.Epoch(),
		Tiles:     uint32(b.c.Tiles()),
	}, nil
}

func (b chunkedBackend) Query(ctx context.Context, req store.QueryRequest) (*store.Result, *store.ReadReport, error) {
	return b.c.Query(ctx, req)
}

func (b chunkedBackend) ReadPoints(ctx context.Context, probe *tensor.Coords) ([]float64, []bool, *store.ReadReport, error) {
	return alignPoints(ctx, b, probe)
}

func (b chunkedBackend) Write(ctx context.Context, coords *tensor.Coords, values []float64) (*store.WriteReport, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return b.c.Write(coords, values)
}

func (b chunkedBackend) WriteBatch(ctx context.Context, batches []store.Batch, workers int) ([]*store.WriteReport, error) {
	return collectBatch(ctx, batches, workers, b.c.WriteBatchContext)
}

func (b chunkedBackend) DeleteRegion(ctx context.Context, region tensor.Region) (*store.WriteReport, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return b.c.DeleteRegion(region)
}

func (b chunkedBackend) Kernel(ctx context.Context, req store.KernelRequest) (*store.KernelResult, error) {
	return b.c.Kernel(ctx, req)
}

func (b chunkedBackend) ObsSnapshot(context.Context) ([]byte, error) {
	return b.c.Obs().Snapshot().JSON()
}

// collectBatch runs a WriteBatchContext-shaped ingest and collects the
// per-batch reports in order, stopping at the first error the way
// store.WriteBatch does.
func collectBatch(ctx context.Context, batches []store.Batch, workers int,
	run func(ctx context.Context, batches []store.Batch, workers int, fn func(i int, rep *store.WriteReport, err error) error) error,
) ([]*store.WriteReport, error) {
	reps := make([]*store.WriteReport, 0, len(batches))
	err := run(ctx, batches, workers, func(_ int, rep *store.WriteReport, err error) error {
		if err != nil {
			return err
		}
		reps = append(reps, rep)
		return nil
	})
	if err != nil {
		return reps, err
	}
	return reps, nil
}

// alignPoints implements the ReadPoints contract (values and found
// marks aligned with the probe order) on top of Query for backends
// whose probe reads return only the found points in sorted order.
func alignPoints(ctx context.Context, b Backend, probe *tensor.Coords) ([]float64, []bool, *store.ReadReport, error) {
	res, rep, err := b.Query(ctx, store.QueryRequest{Probe: probe, AsOf: store.AsOfLatest})
	if err != nil {
		return nil, nil, nil, err
	}
	hits := make(map[string]float64, res.Coords.Len())
	var key []byte
	for i := 0; i < res.Coords.Len(); i++ {
		hits[string(appendCoordKey(key[:0], res.Coords.At(i)))] = res.Values[i]
	}
	vals := make([]float64, probe.Len())
	found := make([]bool, probe.Len())
	for i := 0; i < probe.Len(); i++ {
		if v, ok := hits[string(appendCoordKey(key[:0], probe.At(i)))]; ok {
			vals[i] = v
			found[i] = true
		}
	}
	return vals, found, rep, nil
}

// appendCoordKey appends a map key for one coordinate tuple.
func appendCoordKey(dst []byte, p []uint64) []byte {
	for _, v := range p {
		dst = append(dst,
			byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
			byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	return dst
}

// errUnsupportedOp builds the ErrBadRequest wrap for ops a backend
// cannot serve.
func errUnsupportedOp(what string) error {
	return fmt.Errorf("serve: %w: %s", store.ErrBadRequest, what)
}
