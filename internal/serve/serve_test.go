package serve_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sparseart/internal/core"
	_ "sparseart/internal/core/all" // register every organization
	"sparseart/internal/fsim"
	"sparseart/internal/obs"
	"sparseart/internal/serve"
	"sparseart/internal/store"
	"sparseart/internal/tensor"
	"sparseart/internal/wire"
)

// startServer serves backend on a loopback listener and returns a
// connected client.
func startServer(t *testing.T, backend serve.Backend, cfg serve.Config) (*serve.Server, *serve.Client, string) {
	t.Helper()
	if cfg.Obs == nil {
		cfg.Obs = obs.New()
	}
	srv := serve.NewServer(backend, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	c, err := serve.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, c, ln.Addr().String()
}

func mustCoords(t *testing.T, dims int, flat ...uint64) *tensor.Coords {
	t.Helper()
	c, err := tensor.FromFlat(dims, flat)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestServerRoundTrip(t *testing.T) {
	shape := tensor.Shape{20, 20}
	reg := obs.New()
	st, err := store.Create(fsim.NewPerlmutterSim(), "s", core.CSF, shape, store.WithObs(reg))
	if err != nil {
		t.Fatal(err)
	}
	_, c, _ := startServer(t, serve.StoreBackend(st), serve.Config{Obs: reg})
	ctx := context.Background()

	if err := c.Ping(ctx); err != nil {
		t.Fatalf("ping: %v", err)
	}

	coords := mustCoords(t, 2, 1, 1, 2, 3, 5, 5, 9, 9)
	rep, err := c.Write(ctx, coords, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	if rep.NNZ != 4 {
		t.Fatalf("write NNZ = %d, want 4", rep.NNZ)
	}

	// Probe query through the unified request surface.
	res, rrep, err := c.Query(ctx, store.QueryRequest{
		Probe: mustCoords(t, 2, 2, 3, 7, 7), AsOf: store.AsOfLatest,
	})
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if res.Coords.Len() != 1 || res.Values[0] != 2 {
		t.Fatalf("probe result: %v %v", res.Coords.Flat(), res.Values)
	}
	if rrep == nil || rrep.Probed == 0 {
		t.Fatalf("report not transported: %+v", rrep)
	}

	// Region query, then delete, then region again.
	region := tensor.Region{Start: []uint64{0, 0}, Size: []uint64{20, 20}}
	res, _, err = c.Query(ctx, store.QueryRequest{Region: &region, AsOf: store.AsOfLatest})
	if err != nil {
		t.Fatalf("region query: %v", err)
	}
	if res.Coords.Len() != 4 {
		t.Fatalf("region found %d points, want 4", res.Coords.Len())
	}
	if _, err := c.DeleteRegion(ctx, tensor.Region{Start: []uint64{5, 5}, Size: []uint64{1, 1}}); err != nil {
		t.Fatalf("delete: %v", err)
	}
	res, _, err = c.Query(ctx, store.QueryRequest{Region: &region, AsOf: store.AsOfLatest, Strategy: store.StrategyScan})
	if err != nil {
		t.Fatalf("scan query: %v", err)
	}
	if res.Coords.Len() != 3 {
		t.Fatalf("after delete found %d points, want 3", res.Coords.Len())
	}

	// ReadPoints keeps probe alignment.
	vals, found, _, err := c.ReadPoints(ctx, mustCoords(t, 2, 9, 9, 0, 0, 1, 1))
	if err != nil {
		t.Fatalf("read points: %v", err)
	}
	if !reflect.DeepEqual(vals, []float64{4, 0, 1}) || !reflect.DeepEqual(found, []bool{true, false, true}) {
		t.Fatalf("points: %v %v", vals, found)
	}

	// Kernel push-down over the wire.
	kres, err := c.Kernel(ctx, store.KernelRequest{Op: store.KernelSumAll})
	if err != nil {
		t.Fatalf("kernel: %v", err)
	}
	if kres.Values[0] != 1+2+4 {
		t.Fatalf("sum = %v, want 7", kres.Values[0])
	}

	// WriteBatch streams the batched ingest.
	reps, err := c.WriteBatch(ctx, []store.Batch{
		{Coords: mustCoords(t, 2, 10, 10), Values: []float64{5}},
		{Coords: mustCoords(t, 2, 11, 11), Values: []float64{6}},
	}, 2)
	if err != nil {
		t.Fatalf("write batch: %v", err)
	}
	if len(reps) != 2 {
		t.Fatalf("got %d batch reports, want 2", len(reps))
	}

	info, err := c.Info(ctx)
	if err != nil {
		t.Fatalf("info: %v", err)
	}
	if info.Kind != core.CSF || !info.Shape.Equal(shape) || info.Fragments == 0 {
		t.Fatalf("info: %+v", info)
	}

	snap, err := c.ObsSnapshot(ctx)
	if err != nil {
		t.Fatalf("obs: %v", err)
	}
	if len(snap.Counters) == 0 {
		t.Fatal("obs snapshot empty")
	}
}

// TestServerTypedErrors exercises the lossless error model end to end:
// the client-side errors.Is observes the same sentinels the store
// raised.
func TestServerTypedErrors(t *testing.T) {
	st, err := store.Create(fsim.NewPerlmutterSim(), "s", core.COO, tensor.Shape{10, 10})
	if err != nil {
		t.Fatal(err)
	}
	_, c, _ := startServer(t, serve.StoreBackend(st), serve.Config{})
	ctx := context.Background()

	_, _, err = c.Query(ctx, store.QueryRequest{
		Probe: mustCoords(t, 3, 1, 1, 1), AsOf: store.AsOfLatest,
	})
	if !errors.Is(err, store.ErrShapeMismatch) {
		t.Fatalf("dims error = %v, want ErrShapeMismatch", err)
	}

	_, _, err = c.Query(ctx, store.QueryRequest{AsOf: store.AsOfLatest})
	if !errors.Is(err, store.ErrBadRequest) {
		t.Fatalf("no-target error = %v, want ErrBadRequest", err)
	}

	_, _, err = c.Query(ctx, store.QueryRequest{
		Probe: mustCoords(t, 2, 1, 1), AsOf: 99,
	})
	if !errors.Is(err, store.ErrBadRequest) {
		t.Fatalf("as-of error = %v, want ErrBadRequest", err)
	}
}

// TestConcurrentClients hammers one server from many goroutines over
// both a shared pipelined client and per-goroutine connections; run
// with -race this is the serving layer's concurrency check.
func TestConcurrentClients(t *testing.T) {
	shape := tensor.Shape{64, 64}
	st, err := store.Create(fsim.NewPerlmutterSim(), "s", core.COOSorted, shape)
	if err != nil {
		t.Fatal(err)
	}
	_, shared, addr := startServer(t, serve.StoreBackend(st), serve.Config{})
	ctx := context.Background()

	const goroutines = 8
	const opsEach = 12
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines*2)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			own, err := serve.Dial(addr)
			if err != nil {
				errCh <- err
				return
			}
			defer own.Close()
			c := shared
			if g%2 == 0 {
				c = own
			}
			for i := 0; i < opsEach; i++ {
				row := uint64(g*opsEach+i) % 64
				coords := mustCoords(t, 2, row, uint64(g))
				if _, err := c.Write(ctx, coords, []float64{float64(g + i)}); err != nil {
					errCh <- fmt.Errorf("g%d write: %w", g, err)
					return
				}
				region := tensor.Region{Start: []uint64{0, uint64(g)}, Size: []uint64{64, 1}}
				if _, _, err := c.Query(ctx, store.QueryRequest{Region: &region, AsOf: store.AsOfLatest}); err != nil {
					errCh <- fmt.Errorf("g%d query: %w", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// slowFS injects real latency into fragment opens so a deadline can
// expire mid-read.
type slowFS struct {
	fsim.FS
	delay time.Duration
	opens atomic.Int64
}

func (s *slowFS) Open(name string) (fsim.File, error) {
	s.opens.Add(1)
	time.Sleep(s.delay)
	return s.FS.Open(name)
}

// TestDeadlineCancelsRegionRead is the acceptance-criteria deadline
// test: a client deadline expiring mid-region-read surfaces
// context.DeadlineExceeded AND stops the server-side fragment loop
// early — the store does not grind through every fragment for a
// request nobody is waiting on.
func TestDeadlineCancelsRegionRead(t *testing.T) {
	shape := tensor.Shape{40, 40}
	fs := &slowFS{FS: fsim.NewPerlmutterSim(), delay: 10 * time.Millisecond}
	// Cache off: every fragment probe must open its file, hitting the
	// injected latency.
	st, err := store.Create(fs, "s", core.COO, shape, store.WithReaderCache(0))
	if err != nil {
		t.Fatal(err)
	}
	const fragments = 30
	for i := 0; i < fragments; i++ {
		coords := mustCoords(t, 2, uint64(i), uint64(i))
		if _, err := st.Write(coords, []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	_, c, _ := startServer(t, serve.StoreBackend(st), serve.Config{})

	fs.opens.Store(0)
	ctx, cancel := context.WithTimeout(context.Background(), 35*time.Millisecond)
	defer cancel()
	region := tensor.Region{Start: []uint64{0, 0}, Size: []uint64{40, 40}}
	_, _, err = c.Query(ctx, store.QueryRequest{Region: &region, AsOf: store.AsOfLatest})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	// Give the server a beat to finish the fragment it was on, then
	// confirm the loop stopped: far fewer opens than fragments.
	time.Sleep(50 * time.Millisecond)
	if n := fs.opens.Load(); n >= fragments {
		t.Fatalf("server opened all %d fragments despite expired deadline", n)
	}
}

// blockBackend parks Query calls until released, making the in-flight
// window observable.
type blockBackend struct {
	serve.Backend
	entered chan struct{}
	release chan struct{}
}

func (b *blockBackend) Query(ctx context.Context, req store.QueryRequest) (*store.Result, *store.ReadReport, error) {
	b.entered <- struct{}{}
	<-b.release
	return b.Backend.Query(ctx, req)
}

// TestBackpressure verifies the bounded in-flight window: with
// MaxInFlight=1 and one request parked in the backend, the next
// request is rejected immediately with the typed overload error
// instead of queueing.
func TestBackpressure(t *testing.T) {
	st, err := store.Create(fsim.NewPerlmutterSim(), "s", core.COO, tensor.Shape{10, 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Write(mustCoords(t, 2, 1, 1), []float64{1}); err != nil {
		t.Fatal(err)
	}
	bb := &blockBackend{
		Backend: serve.StoreBackend(st),
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
	_, c, _ := startServer(t, bb, serve.Config{MaxInFlight: 1})
	ctx := context.Background()
	region := tensor.Region{Start: []uint64{0, 0}, Size: []uint64{10, 10}}

	first := make(chan error, 1)
	go func() {
		_, _, err := c.Query(ctx, store.QueryRequest{Region: &region, AsOf: store.AsOfLatest})
		first <- err
	}()
	<-bb.entered // the only slot is now held

	_, _, err = c.Query(ctx, store.QueryRequest{Region: &region, AsOf: store.AsOfLatest})
	if !errors.Is(err, wire.ErrOverloaded) {
		t.Fatalf("second query err = %v, want ErrOverloaded", err)
	}

	close(bb.release)
	if err := <-first; err != nil {
		t.Fatalf("first query: %v", err)
	}
}

// newShard boots one shard: a chunked store behind a wire server on
// loopback.
func newShard(t *testing.T, kind core.Kind, shape, tile tensor.Shape) string {
	t.Helper()
	reg := obs.New()
	c, err := store.NewChunked(fsim.NewPerlmutterSim(), "shard", kind, shape, tile, store.WithObs(reg))
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(serve.ChunkedBackend(c), serve.Config{Obs: reg})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

// TestRouterMatchesLocalChunked is the acceptance-criteria
// differential: every read served by a 3-shard router must be
// byte-identical to a single-process Chunked store given the same
// writes, across all seven storage kinds, all strategies, probes,
// deletes, and the additive kernels.
func TestRouterMatchesLocalChunked(t *testing.T) {
	shape := tensor.Shape{24, 24}
	tile := tensor.Shape{8, 8}
	kinds := append(core.PaperKinds(), core.COOSorted, core.BCOO)
	for _, kind := range kinds {
		t.Run(kind.String(), func(t *testing.T) {
			addrs := []string{
				newShard(t, kind, shape, tile),
				newShard(t, kind, shape, tile),
				newShard(t, kind, shape, tile),
			}
			router, err := serve.NewRouter(addrs, obs.New())
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { router.Close() })
			local, err := store.NewChunked(fsim.NewPerlmutterSim(), "local", kind, shape, tile)
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			rng := rand.New(rand.NewSource(42))

			// Identical writes through both paths: several multi-tile
			// fragments, a batched ingest, and a region delete.
			for round := 0; round < 3; round++ {
				coords, values := randomPoints(rng, shape, 50)
				if _, err := router.Write(ctx, coords, values); err != nil {
					t.Fatalf("router write: %v", err)
				}
				if _, err := local.Write(coords, values); err != nil {
					t.Fatalf("local write: %v", err)
				}
			}
			var batches []store.Batch
			for b := 0; b < 3; b++ {
				coords, values := randomPoints(rng, shape, 25)
				batches = append(batches, store.Batch{Coords: coords, Values: values})
			}
			if _, err := router.WriteBatch(ctx, batches, 2); err != nil {
				t.Fatalf("router batch: %v", err)
			}
			if _, err := local.WriteBatch(batches, 2); err != nil {
				t.Fatalf("local batch: %v", err)
			}
			del := tensor.Region{Start: []uint64{6, 6}, Size: []uint64{6, 9}}
			if _, err := router.DeleteRegion(ctx, del); err != nil {
				t.Fatalf("router delete: %v", err)
			}
			if _, err := local.DeleteRegion(del); err != nil {
				t.Fatalf("local delete: %v", err)
			}

			// Region reads: every strategy, a tile-spanning window and
			// the full tensor, must match point for point.
			regions := []tensor.Region{
				{Start: []uint64{0, 0}, Size: []uint64{24, 24}},
				{Start: []uint64{5, 3}, Size: []uint64{13, 17}},
				{Start: []uint64{8, 8}, Size: []uint64{8, 8}},
			}
			for _, region := range regions {
				for _, strat := range []store.Strategy{store.StrategyDefault, store.StrategyScan, store.StrategyAuto} {
					region := region
					req := store.QueryRequest{Region: &region, AsOf: store.AsOfLatest, Strategy: strat}
					want, _, err := local.Query(ctx, req)
					if err != nil {
						t.Fatalf("local query %v/%v: %v", region, strat, err)
					}
					got, _, err := router.Query(ctx, req)
					if err != nil {
						t.Fatalf("router query %v/%v: %v", region, strat, err)
					}
					if !reflect.DeepEqual(got.Coords.Flat(), want.Coords.Flat()) ||
						!reflect.DeepEqual(got.Values, want.Values) {
						t.Fatalf("%v/%v: router and local disagree:\n got %v %v\nwant %v %v",
							region, strat, got.Coords.Flat(), got.Values, want.Coords.Flat(), want.Values)
					}
				}
			}

			// Probe reads preserve alignment and agree with local state.
			probe, _ := randomPoints(rng, shape, 30)
			wantRes, _, err := local.Query(ctx, store.QueryRequest{Probe: probe, AsOf: store.AsOfLatest})
			if err != nil {
				t.Fatal(err)
			}
			gotRes, _, err := router.Query(ctx, store.QueryRequest{Probe: probe, AsOf: store.AsOfLatest})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotRes.Coords.Flat(), wantRes.Coords.Flat()) ||
				!reflect.DeepEqual(gotRes.Values, wantRes.Values) {
				t.Fatalf("probe disagreement: got %v want %v", gotRes.Values, wantRes.Values)
			}

			// Additive kernels: exact for counts, tolerance for sums
			// (per-shard partials associate differently).
			for _, kreq := range []store.KernelRequest{
				{Op: store.KernelSumAll},
				{Op: store.KernelLiveNNZ},
				{Op: store.KernelNNZPerSlice, Mode: 0},
				{Op: store.KernelSumRegion, Region: &regions[1]},
			} {
				wantK, err := local.Kernel(ctx, kreq)
				if err != nil {
					t.Fatalf("local kernel %v: %v", kreq.Op, err)
				}
				gotK, err := router.Kernel(ctx, kreq)
				if err != nil {
					t.Fatalf("router kernel %v: %v", kreq.Op, err)
				}
				if len(gotK.Values) != len(wantK.Values) {
					t.Fatalf("kernel %v: %d values, want %d", kreq.Op, len(gotK.Values), len(wantK.Values))
				}
				for i, want := range wantK.Values {
					if math.Abs(gotK.Values[i]-want) > 1e-9*(1+math.Abs(want)) {
						t.Fatalf("kernel %v[%d]: router %v local %v", kreq.Op, i, gotK.Values[i], want)
					}
				}
			}
			// SpMV needs cross-tile accumulation and must be rejected.
			if _, err := router.Kernel(ctx, store.KernelRequest{Op: store.KernelSpMV, Vec: make([]float64, 24)}); !errors.Is(err, store.ErrBadRequest) {
				t.Fatalf("spmv on router = %v, want ErrBadRequest", err)
			}
		})
	}
}

// randomPoints draws n distinct coordinates in shape with values.
func randomPoints(rng *rand.Rand, shape tensor.Shape, n int) (*tensor.Coords, []float64) {
	seen := map[[2]uint64]bool{}
	coords := tensor.NewCoords(len(shape), n)
	var values []float64
	for len(values) < n {
		p := [2]uint64{rng.Uint64() % shape[0], rng.Uint64() % shape[1]}
		if seen[p] {
			continue
		}
		seen[p] = true
		coords.Append(p[0], p[1])
		values = append(values, float64(rng.Intn(1000))/8)
	}
	return coords, values
}

// TestRouterObsAggregation checks the fleet-wide telemetry path: after
// a workload, a router obs refresh absorbs shard store counters into
// the router registry, and a second refresh does not double-count.
func TestRouterObsAggregation(t *testing.T) {
	shape := tensor.Shape{16, 16}
	tile := tensor.Shape{8, 8}
	addrs := []string{
		newShard(t, core.COO, shape, tile),
		newShard(t, core.COO, shape, tile),
	}
	reg := obs.New()
	router, err := serve.NewRouter(addrs, reg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { router.Close() })
	ctx := context.Background()

	rng := rand.New(rand.NewSource(7))
	coords, values := randomPoints(rng, shape, 40)
	if _, err := router.Write(ctx, coords, values); err != nil {
		t.Fatal(err)
	}
	region := tensor.Region{Start: []uint64{0, 0}, Size: []uint64{16, 16}}
	if _, _, err := router.Query(ctx, store.QueryRequest{Region: &region, AsOf: store.AsOfLatest}); err != nil {
		t.Fatal(err)
	}

	if err := router.RefreshObs(ctx); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	total := func(s *obs.Snapshot, family string) int64 {
		var sum int64
		for name, v := range s.Counters {
			if f, _ := obs.ParseName(name); f == family {
				sum += v
			}
		}
		return sum
	}
	reads := total(snap, "store.read.count")
	if reads == 0 {
		t.Fatalf("no shard read counters absorbed: %v", snap.Counters)
	}
	// Idle refresh: deltas are empty, counters must not grow.
	if err := router.RefreshObs(ctx); err != nil {
		t.Fatal(err)
	}
	if again := total(reg.Snapshot(), "store.read.count"); again != reads {
		t.Fatalf("idle refresh moved counters: %d -> %d", reads, again)
	}
}
