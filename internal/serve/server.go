package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"sync"
	"time"

	"sparseart/internal/obs"
	"sparseart/internal/store"
	"sparseart/internal/wire"
)

// DefaultMaxInFlight bounds concurrently executing requests when the
// config leaves MaxInFlight zero.
const DefaultMaxInFlight = 64

// Config tunes a Server.
type Config struct {
	// MaxInFlight bounds requests executing concurrently across all
	// connections; a request arriving with the window full is rejected
	// immediately with wire.ErrOverloaded (back-pressure, not
	// queueing). 0 means DefaultMaxInFlight.
	MaxInFlight int
	// Obs receives the server's own metrics (serve.* families); nil
	// uses the process-global registry.
	Obs *obs.Registry
	// TraceSample is the probability [0,1] that a request arriving
	// without a trace context starts a new sampled trace. Requests that
	// already carry a context keep the sender's sampling decision.
	// Zero or negative falls back to SPARSEART_TRACE_SAMPLE (default
	// off).
	TraceSample float64
}

// Server answers wire-protocol requests against one Backend. Each
// connection pipelines: requests are read sequentially, executed
// concurrently (subject to the in-flight bound), and answered in
// completion order tagged with the request id.
type Server struct {
	backend   Backend
	sem       chan struct{}
	reg       *obs.Registry
	traceRate float64

	ctx    context.Context // canceled by Close; parent of every request ctx
	cancel context.CancelFunc

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer builds a Server over backend.
func NewServer(backend Backend, cfg Config) *Server {
	inflight := cfg.MaxInFlight
	if inflight <= 0 {
		inflight = DefaultMaxInFlight
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.Global()
	}
	rate := cfg.TraceSample
	if rate <= 0 {
		rate = envTraceSample()
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		backend:   backend,
		sem:       make(chan struct{}, inflight),
		reg:       reg,
		traceRate: rate,
		ctx:       ctx,
		cancel:    cancel,
		conns:     map[net.Conn]struct{}{},
	}
}

// envTraceSample resolves SPARSEART_TRACE_SAMPLE: a float in [0,1];
// unset, unparsable, or out-of-range values mean no server-side
// sampling.
func envTraceSample() float64 {
	v := os.Getenv("SPARSEART_TRACE_SAMPLE")
	if v == "" {
		return 0
	}
	rate, err := strconv.ParseFloat(v, 64)
	if err != nil || rate < 0 || rate > 1 {
		return 0
	}
	return rate
}

// Serve accepts connections on ln until Close (or a fatal accept
// error). It blocks; run it in a goroutine.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("serve: server closed")
	}
	s.mu.Unlock()
	go func() {
		<-s.ctx.Done()
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("serve: accept: %w", err)
		}
		if !s.track(conn) {
			conn.Close()
			return nil
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// track registers a live connection; false means the server closed.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	s.reg.Gauge("serve.conns").Add(1)
	return true
}

// untrack forgets a finished connection.
func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	if _, ok := s.conns[conn]; ok {
		delete(s.conns, conn)
		s.reg.Gauge("serve.conns").Add(-1)
	}
	s.mu.Unlock()
}

// Close stops accepting, cancels every in-flight request's context,
// closes live connections, and waits for handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.cancel()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

// connWriter serializes response frames on one connection.
type connWriter struct {
	mu   sync.Mutex
	conn net.Conn
}

// reply writes one response frame.
func (cw *connWriter) reply(typ uint8, id uint64, payload []byte) error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	return wire.WriteFrame(cw.conn, typ, id, payload)
}

// serveConn reads requests off one connection until EOF or close.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer s.untrack(conn)
	defer conn.Close()
	cw := &connWriter{conn: conn}
	var reqs sync.WaitGroup
	defer reqs.Wait()
	for {
		typ, id, tc, payload, err := wire.ReadFrameTrace(conn)
		if err != nil {
			return // EOF, peer reset, or Close — nothing to answer
		}
		op := opName(typ)
		if op == "" {
			cw.reply(wire.MsgErr, id, wire.EncodeError(errUnsupportedOp(fmt.Sprintf("unknown message type %#x", typ))))
			continue
		}
		select {
		case s.sem <- struct{}{}:
		default:
			// Window full: reject now rather than queue — the client
			// sees typed back-pressure it can retry against.
			s.reg.Counter("serve.rejected", "op", op).Inc()
			cw.reply(wire.MsgErr, id, wire.EncodeError(
				fmt.Errorf("serve: %w: %d requests in flight", wire.ErrOverloaded, cap(s.sem))))
			continue
		}
		if !tc.Valid() && typ != wire.MsgObs && typ != wire.MsgPing && obs.Sample(s.traceRate) {
			// No caller context: this server is the trace root. Telemetry
			// and liveness ops are never minted a trace — a scrape's own
			// sub-requests would parent to a serve.request span that is
			// still open when the snapshot it serves is cut, littering
			// every stitched trace with unresolvable links.
			tc = obs.NewTrace(true)
		}
		s.reg.Gauge("serve.inflight").Add(1)
		reqs.Add(1)
		go func(typ uint8, id uint64, tc obs.TraceContext, payload []byte) {
			defer reqs.Done()
			defer func() {
				s.reg.Gauge("serve.inflight").Add(-1)
				<-s.sem
			}()
			// The span's End feeds the same serve.request{op} histogram
			// the server has always kept; sampled requests additionally
			// record a trace span carrying the caller's trace identity.
			sp := s.reg.StartRemote(tc, obs.Name("serve.request", "op", op))
			resp, err := s.handle(typ, sp.TraceContext(), payload)
			if err != nil && sp.Sampled() {
				sp.SetAttrStr("err", err.Error())
			}
			sp.End()
			if err != nil {
				s.reg.Counter("serve.request.errors", "op", op, "code", fmt.Sprint(uint16(wire.CodeOf(err)))).Inc()
				cw.reply(wire.MsgErr, id, wire.EncodeError(err))
				return
			}
			cw.reply(wire.MsgOK, id, resp)
		}(typ, id, tc, payload)
	}
}

// opName labels a request type for metrics; "" means unknown.
func opName(typ uint8) string {
	switch typ {
	case wire.MsgQuery:
		return "query"
	case wire.MsgReadPoints:
		return "read_points"
	case wire.MsgWrite:
		return "write"
	case wire.MsgWriteBatch:
		return "write_batch"
	case wire.MsgDelete:
		return "delete"
	case wire.MsgKernel:
		return "kernel"
	case wire.MsgInfo:
		return "info"
	case wire.MsgObs:
		return "obs"
	case wire.MsgPing:
		return "ping"
	default:
		return ""
	}
}

// reqCtx derives the request context from the server lifetime, the
// request's relative deadline, and its trace context — backend spans
// started under it join the request's trace.
func (s *Server) reqCtx(d time.Duration, tc obs.TraceContext) (context.Context, context.CancelFunc) {
	ctx := obs.ContextWithTrace(s.ctx, tc)
	if d > 0 {
		return context.WithTimeout(ctx, d)
	}
	return context.WithCancel(ctx)
}

// handle decodes, executes, and encodes one request.
func (s *Server) handle(typ uint8, tc obs.TraceContext, payload []byte) ([]byte, error) {
	switch typ {
	case wire.MsgQuery:
		q, err := wire.DecodeQuery(payload)
		if err != nil {
			return nil, badPayload(err)
		}
		ctx, cancel := s.reqCtx(q.Deadline, tc)
		defer cancel()
		res, rep, err := s.backend.Query(ctx, q.Req)
		if err != nil {
			return nil, err
		}
		return (&wire.QueryResult{Result: res, Report: rep}).Encode(), nil

	case wire.MsgReadPoints:
		m, err := wire.DecodeReadPoints(payload)
		if err != nil {
			return nil, badPayload(err)
		}
		ctx, cancel := s.reqCtx(m.Deadline, tc)
		defer cancel()
		vals, found, rep, err := s.backend.ReadPoints(ctx, m.Probe)
		if err != nil {
			return nil, err
		}
		return (&wire.PointsResult{Values: vals, Found: found, Report: rep}).Encode(), nil

	case wire.MsgWrite:
		m, err := wire.DecodeWrite(payload)
		if err != nil {
			return nil, badPayload(err)
		}
		ctx, cancel := s.reqCtx(m.Deadline, tc)
		defer cancel()
		rep, err := s.backend.Write(ctx, m.Coords, m.Values)
		if err != nil {
			return nil, err
		}
		return wire.EncodeWriteReport(rep), nil

	case wire.MsgWriteBatch:
		m, err := wire.DecodeWriteBatch(payload)
		if err != nil {
			return nil, badPayload(err)
		}
		ctx, cancel := s.reqCtx(m.Deadline, tc)
		defer cancel()
		reps, err := s.backend.WriteBatch(ctx, m.Batches, m.Workers)
		if err != nil {
			return nil, err
		}
		return wire.EncodeWriteReports(reps), nil

	case wire.MsgDelete:
		m, err := wire.DecodeDelete(payload)
		if err != nil {
			return nil, badPayload(err)
		}
		ctx, cancel := s.reqCtx(m.Deadline, tc)
		defer cancel()
		rep, err := s.backend.DeleteRegion(ctx, m.Region)
		if err != nil {
			return nil, err
		}
		return wire.EncodeWriteReport(rep), nil

	case wire.MsgKernel:
		m, err := wire.DecodeKernel(payload)
		if err != nil {
			return nil, badPayload(err)
		}
		ctx, cancel := s.reqCtx(m.Deadline, tc)
		defer cancel()
		res, err := s.backend.Kernel(ctx, m.Req)
		if err != nil {
			return nil, err
		}
		return wire.EncodeKernelResult(res), nil

	case wire.MsgInfo:
		d, err := wire.DecodeDeadline(payload)
		if err != nil {
			return nil, badPayload(err)
		}
		ctx, cancel := s.reqCtx(d, tc)
		defer cancel()
		info, err := s.backend.Info(ctx)
		if err != nil {
			return nil, err
		}
		return info.Encode(), nil

	case wire.MsgObs:
		d, err := wire.DecodeDeadline(payload)
		if err != nil {
			return nil, badPayload(err)
		}
		ctx, cancel := s.reqCtx(d, tc)
		defer cancel()
		return s.backend.ObsSnapshot(ctx)

	case wire.MsgPing:
		return nil, nil

	default:
		return nil, errUnsupportedOp(fmt.Sprintf("unknown message type %#x", typ))
	}
}

// badPayload wraps a decode failure as a typed bad request.
func badPayload(err error) error {
	return fmt.Errorf("serve: %w: %v", store.ErrBadRequest, err)
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

var _ io.Closer = (*Server)(nil)
