// Package filter implements per-fragment, per-dimension coordinate
// summaries: compact probabilistic structures that answer "might this
// fragment contain a point whose d-th coordinate is c?" (and the range
// form of the same question) without touching the fragment file.
//
// A fragment's bounding box over-approximates its coordinate set badly
// for sparse data — a fragment holding points (0,0) and (999,999) has a
// bbox covering the whole plane — so the storage engine's overlap
// search admits fragments that cannot possibly answer a query. The
// filter closes that gap the way bloom filters do in LSM stores: a
// query that passes the bbox check consults the filter and skips the
// fragment (no file open, no probe) when any dimension proves the
// requested coordinates absent. False positives are allowed (the
// fragment is opened and probed for nothing); false negatives never
// happen — a coordinate that was fed to Build always passes.
//
// Two encodings per dimension, chosen automatically:
//
//   - bitmap: when the dimension's bbox extent is small (≤ maxBitmapBits)
//     the filter stores one bit per coordinate in [min, max]. Exact — no
//     false positives — and range queries are a word scan.
//   - bloom: otherwise, a standard double-hashed bloom filter over the
//     dimension's distinct coordinate values. Point queries are
//     approximate; range queries degrade to "maybe" once the range is
//     wider than maxRangeProbe.
package filter

import (
	"fmt"
	"math/bits"

	"sparseart/internal/buf"
	"sparseart/internal/tensor"
)

const (
	kindBitmap = 0
	kindBloom  = 1

	// maxBitmapBits bounds the exact-bitmap encoding: a dimension whose
	// bbox extent fits in this many bits costs at most 1 KiB and stays
	// exact. Wider extents fall back to the bloom encoding.
	maxBitmapBits = 8192

	// Bloom sizing: bitsPerKey targets ~1% false positives at k
	// derived below; the bit count is clamped to [minBloomBits,
	// maxBloomBits] and rounded up to a power of two so the hash can
	// mask instead of mod.
	bloomBitsPerKey = 10
	minBloomBits    = 64
	maxBloomBits    = 1 << 15

	// maxRangeProbe bounds the per-coordinate probing a bloom filter is
	// willing to do for a range query; wider ranges answer "maybe".
	maxRangeProbe = 64
)

// dim is one dimension's summary.
type dim struct {
	kind  uint8
	base  uint64 // bitmap: the coordinate bit 0 stands for (bbox min)
	k     uint8  // bloom: number of hash probes
	nbits uint32
	words []uint64
}

// Filter summarizes the per-dimension coordinate sets of one fragment.
// The zero value is not useful; Build and Decode are the constructors.
// A Filter is immutable after construction and safe for concurrent use.
type Filter struct {
	dims []dim
}

// Build summarizes the coordinate set of c. Returns nil when c is
// empty — an empty fragment needs no filter. The result is a pure
// function of c's contents, so the serial write path and the batched
// ingest pipeline produce byte-identical encodings for the same batch.
func Build(c *tensor.Coords) *Filter {
	n := c.Len()
	if n == 0 {
		return nil
	}
	box, _ := c.Bounds()
	f := &Filter{dims: make([]dim, c.Dims())}
	for d := range f.dims {
		extent := box.Max[d] - box.Min[d] + 1
		if extent <= maxBitmapBits && extent > 0 { // extent==0 means Max-Min+1 overflowed
			f.dims[d] = dim{
				kind:  kindBitmap,
				base:  box.Min[d],
				nbits: uint32(extent),
				words: make([]uint64, (extent+63)/64),
			}
		} else {
			nbits := bloomSize(n)
			f.dims[d] = dim{
				kind:  kindBloom,
				k:     bloomHashes(nbits, n),
				nbits: nbits,
				words: make([]uint64, nbits/64),
			}
		}
	}
	for i := 0; i < n; i++ {
		p := c.At(i)
		for d := range f.dims {
			f.dims[d].add(uint16(d), p[d])
		}
	}
	return f
}

// bloomSize picks the bit count for n keys: bitsPerKey × n, clamped and
// rounded up to a power of two.
func bloomSize(n int) uint32 {
	want := uint64(n) * bloomBitsPerKey
	if want < minBloomBits {
		want = minBloomBits
	}
	if want > maxBloomBits {
		want = maxBloomBits
	}
	return uint32(1) << bits.Len64(want-1)
}

// bloomHashes derives the probe count k ≈ 0.7·m/n, clamped to [1, 6].
func bloomHashes(nbits uint32, n int) uint8 {
	k := int(float64(nbits) / float64(n) * 0.7)
	if k < 1 {
		k = 1
	}
	if k > 6 {
		k = 6
	}
	return uint8(k)
}

// mix64 is the splitmix64 finalizer: the bloom hash family's core.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (dm *dim) add(d uint16, c uint64) {
	switch dm.kind {
	case kindBitmap:
		bit := c - dm.base
		dm.words[bit/64] |= 1 << (bit % 64)
	default:
		h1 := mix64(c ^ (uint64(d)+1)*0x9e3779b97f4a7c15)
		h2 := mix64(h1) | 1
		mask := uint64(dm.nbits) - 1
		for i := uint8(0); i < dm.k; i++ {
			bit := (h1 + uint64(i)*h2) & mask
			dm.words[bit/64] |= 1 << (bit % 64)
		}
	}
}

func (dm *dim) mayContain(d uint16, c uint64) bool {
	switch dm.kind {
	case kindBitmap:
		if c < dm.base || c-dm.base >= uint64(dm.nbits) {
			return false
		}
		bit := c - dm.base
		return dm.words[bit/64]&(1<<(bit%64)) != 0
	default:
		h1 := mix64(c ^ (uint64(d)+1)*0x9e3779b97f4a7c15)
		h2 := mix64(h1) | 1
		mask := uint64(dm.nbits) - 1
		for i := uint8(0); i < dm.k; i++ {
			bit := (h1 + uint64(i)*h2) & mask
			if dm.words[bit/64]&(1<<(bit%64)) == 0 {
				return false
			}
		}
		return true
	}
}

// mayOverlapRange answers "might some stored coordinate lie in
// [lo, hi]?" (inclusive). Exact for bitmaps; blooms probe up to
// maxRangeProbe individual values and otherwise answer true.
func (dm *dim) mayOverlapRange(d uint16, lo, hi uint64) bool {
	if hi < lo {
		return false
	}
	switch dm.kind {
	case kindBitmap:
		end := dm.base + uint64(dm.nbits) - 1
		if hi < dm.base || lo > end {
			return false
		}
		if lo < dm.base {
			lo = dm.base
		}
		if hi > end {
			hi = end
		}
		for bit := lo - dm.base; bit <= hi-dm.base; {
			w := dm.words[bit/64] >> (bit % 64)
			if w != 0 {
				rem := 64 - bit%64
				if span := hi - dm.base - bit; span+1 < rem {
					rem = span + 1
				}
				if w&(^uint64(0)>>(64-rem)) != 0 {
					return true
				}
			}
			bit += 64 - bit%64
		}
		return false
	default:
		if hi-lo >= maxRangeProbe {
			return true
		}
		for c := lo; ; c++ {
			if dm.mayContain(d, c) {
				return true
			}
			if c == hi {
				return false
			}
		}
	}
}

// Dims returns the filter's rank.
func (f *Filter) Dims() int { return len(f.dims) }

// MayContainPoint reports whether the fragment might contain p: every
// dimension's summary must admit p's coordinate. A false result is
// definitive — no stored point has these coordinates.
func (f *Filter) MayContainPoint(p []uint64) bool {
	for d := range f.dims {
		if !f.dims[d].mayContain(uint16(d), p[d]) {
			return false
		}
	}
	return true
}

// MayOverlapRegion reports whether the fragment might contain a point
// inside the region. A false result is definitive: some dimension has
// no stored coordinate in the region's range there, so no stored point
// can lie inside it.
func (f *Filter) MayOverlapRegion(r tensor.Region) bool {
	for d := range f.dims {
		if !f.dims[d].mayOverlapRange(uint16(d), r.Start[d], r.Start[d]+r.Size[d]-1) {
			return false
		}
	}
	return true
}

// MayOverlapBox is MayOverlapRegion for an inclusive bounding box.
func (f *Filter) MayOverlapBox(b tensor.BBox) bool {
	for d := range f.dims {
		if !f.dims[d].mayOverlapRange(uint16(d), b.Min[d], b.Max[d]) {
			return false
		}
	}
	return true
}

// DimStats describes one dimension's summary for inspection tooling.
type DimStats struct {
	Kind string // "bitmap" or "bloom"
	Bits int    // filter width in bits
	Set  int    // bits set (fill ratio = Set/Bits)
}

// Stats returns per-dimension encoding statistics.
func (f *Filter) Stats() []DimStats {
	out := make([]DimStats, len(f.dims))
	for d, dm := range f.dims {
		st := DimStats{Kind: "bitmap", Bits: int(dm.nbits)}
		if dm.kind == kindBloom {
			st.Kind = "bloom"
		}
		for _, w := range dm.words {
			st.Set += bits.OnesCount64(w)
		}
		out[d] = st
	}
	return out
}

// EncodedSize returns the exact byte length Encode produces.
func (f *Filter) EncodedSize() int {
	n := 2
	for _, dm := range f.dims {
		n += 1 + 4 + 8*len(dm.words)
		if dm.kind == kindBitmap {
			n += 8
		} else {
			n += 1
		}
	}
	return n
}

// Encode serializes the filter. Layout (little-endian):
//
//	u16 dims
//	per dimension:
//	  u8  kind (0 bitmap, 1 bloom)
//	  bitmap: u64 base
//	  bloom:  u8 hash count
//	  u32 bits
//	  u64[ceil(bits/64)] words
func (f *Filter) Encode() []byte {
	w := buf.NewWriter(f.EncodedSize())
	w.U16(uint16(len(f.dims)))
	for _, dm := range f.dims {
		w.U8(dm.kind)
		if dm.kind == kindBitmap {
			w.U64(dm.base)
		} else {
			w.U8(dm.k)
		}
		w.U32(dm.nbits)
		w.RawU64s(dm.words)
	}
	return w.Bytes()
}

// Decode parses an encoded filter. Decode(Encode(f)) reproduces f
// exactly.
func Decode(b []byte) (*Filter, error) {
	r := buf.NewReader(b)
	nd := int(r.U16())
	f := &Filter{dims: make([]dim, 0, nd)}
	for i := 0; i < nd && r.Err() == nil; i++ {
		var dm dim
		dm.kind = r.U8()
		switch dm.kind {
		case kindBitmap:
			dm.base = r.U64()
		case kindBloom:
			dm.k = r.U8()
		default:
			return nil, fmt.Errorf("filter: unknown dimension kind %d", dm.kind)
		}
		dm.nbits = r.U32()
		words := (uint64(dm.nbits) + 63) / 64
		if dm.nbits == 0 || words*8 > uint64(r.Remaining()) {
			return nil, fmt.Errorf("filter: implausible %d-bit dimension in %d bytes", dm.nbits, r.Remaining())
		}
		if dm.kind == kindBloom {
			if dm.nbits&(dm.nbits-1) != 0 {
				return nil, fmt.Errorf("filter: bloom width %d not a power of two", dm.nbits)
			}
			if dm.k < 1 || dm.k > 6 {
				return nil, fmt.Errorf("filter: bloom hash count %d", dm.k)
			}
		}
		dm.words = r.RawU64s(words)
		f.dims = append(f.dims, dm)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("filter: %w", err)
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("filter: %d trailing bytes", r.Remaining())
	}
	return f, nil
}
