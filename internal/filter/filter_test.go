package filter

import (
	"bytes"
	"math/rand"
	"testing"

	"sparseart/internal/tensor"
)

func coordsOf(t *testing.T, dims int, pts ...[]uint64) *tensor.Coords {
	t.Helper()
	c := tensor.NewCoords(dims, 0)
	for _, p := range pts {
		c.Append(p...)
	}
	return c
}

func TestBuildEmptyReturnsNil(t *testing.T) {
	if f := Build(tensor.NewCoords(2, 0)); f != nil {
		t.Fatalf("Build on empty coords = %v, want nil", f)
	}
}

// No false negatives: every ingested point must pass the point check,
// and every region containing an ingested point must pass the region
// check — for both encodings.
func TestNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct {
		name string
		span uint64 // coordinate magnitude; > maxBitmapBits forces bloom
	}{
		{"bitmap", 1000},
		{"bloom", 1 << 40},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := tensor.NewCoords(3, 0)
			for i := 0; i < 500; i++ {
				c.Append(rng.Uint64()%tc.span, rng.Uint64()%tc.span, rng.Uint64()%tc.span)
			}
			f := Build(c)
			for i := 0; i < c.Len(); i++ {
				p := c.At(i)
				if !f.MayContainPoint(p) {
					t.Fatalf("false negative: point %v", p)
				}
				r := tensor.Region{Start: append([]uint64(nil), p...), Size: []uint64{1, 1, 1}}
				if !f.MayOverlapRegion(r) {
					t.Fatalf("false negative: unit region at %v", r.Start)
				}
				if !f.MayOverlapBox(tensor.BBox{Min: r.Start, Max: r.Start}) {
					t.Fatalf("false negative: unit box at %v", r.Start)
				}
			}
		})
	}
}

// Bitmap dimensions are exact: absent coordinates inside the bbox must
// be rejected.
func TestBitmapExactness(t *testing.T) {
	c := coordsOf(t, 2, []uint64{0, 0}, []uint64{10, 10}, []uint64{20, 20})
	f := Build(c)
	for _, st := range f.Stats() {
		if st.Kind != "bitmap" {
			t.Fatalf("expected bitmap encoding, got %q", st.Kind)
		}
	}
	if f.MayContainPoint([]uint64{5, 5}) {
		t.Fatal("bitmap admitted absent point (5,5)")
	}
	if f.MayContainPoint([]uint64{10, 0}) {
		// dim 0 has {0,10,20}, dim 1 has {0,10,20}: both pass
		// individually, so this IS an admissible false positive for a
		// per-dimension filter.
		t.Log("per-dimension filter admits (10,0) — expected false positive")
	}
	if f.MayContainPoint([]uint64{21, 21}) {
		t.Fatal("bitmap admitted out-of-range point")
	}
	// Range with no stored coordinate in dim 0: [1,9].
	if f.MayOverlapRegion(tensor.Region{Start: []uint64{1, 0}, Size: []uint64{9, 21}}) {
		t.Fatal("bitmap admitted region covering no stored dim-0 coordinate")
	}
	// Range touching a stored coordinate.
	if !f.MayOverlapRegion(tensor.Region{Start: []uint64{1, 0}, Size: []uint64{10, 1}}) {
		t.Fatal("bitmap rejected region containing stored coordinate 10")
	}
}

// The bitmap range scan must find bits in every word position,
// including bits straddling word boundaries.
func TestBitmapRangeWordBoundaries(t *testing.T) {
	for _, coord := range []uint64{0, 1, 63, 64, 65, 127, 128, 500} {
		c := coordsOf(t, 1, []uint64{0}, []uint64{coord}, []uint64{501})
		f := Build(c)
		if coord > 0 && coord < 501 {
			if !f.MayOverlapBox(tensor.BBox{Min: []uint64{1}, Max: []uint64{500}}) {
				t.Fatalf("range [1,500] missed stored coordinate %d", coord)
			}
		}
		if f.MayOverlapBox(tensor.BBox{Min: []uint64{502}, Max: []uint64{600}}) {
			t.Fatalf("range past the bitmap end admitted (coord %d)", coord)
		}
	}
}

// Bloom dimensions answer "maybe" for wide ranges but reject narrow
// ranges of absent values with high probability; verify the probing
// path returns true whenever a stored value is inside a narrow range.
func TestBloomRangeProbing(t *testing.T) {
	c := tensor.NewCoords(1, 0)
	base := uint64(1) << 40
	for i := uint64(0); i < 100; i++ {
		c.Append(base + i*1000)
	}
	f := Build(c)
	st := f.Stats()[0]
	if st.Kind != "bloom" {
		t.Fatalf("expected bloom encoding, got %q", st.Kind)
	}
	// Narrow range containing a stored value.
	if !f.MayOverlapBox(tensor.BBox{Min: []uint64{base + 990}, Max: []uint64{base + 1010}}) {
		t.Fatal("bloom range probe missed stored value")
	}
	// Range wider than maxRangeProbe: must answer maybe.
	if !f.MayOverlapBox(tensor.BBox{Min: []uint64{0}, Max: []uint64{maxRangeProbe + 1}}) {
		t.Fatal("wide bloom range must answer maybe")
	}
}

// Bloom false-positive rate should be low at the target bits-per-key.
func TestBloomFalsePositiveRate(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	c := tensor.NewCoords(1, 0)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		v := rng.Uint64() >> 1
		c.Append(v)
		seen[v] = true
	}
	f := Build(c)
	fp := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		v := rng.Uint64() >> 1
		if seen[v] {
			continue
		}
		if f.MayContainPoint([]uint64{v}) {
			fp++
		}
	}
	// At 10 bits/key (capped to 8192 bits here for n=1000, ~8.2 b/k) the
	// theoretical rate is ~2%; allow generous slack.
	if rate := float64(fp) / trials; rate > 0.10 {
		t.Fatalf("bloom false-positive rate %.3f too high", rate)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, span := range []uint64{100, 1 << 50} {
		c := tensor.NewCoords(4, 0)
		for i := 0; i < 300; i++ {
			c.Append(rng.Uint64()%span, rng.Uint64()%span, rng.Uint64()%span, rng.Uint64()%span)
		}
		f := Build(c)
		enc := f.Encode()
		if len(enc) != f.EncodedSize() {
			t.Fatalf("EncodedSize %d != len(Encode) %d", f.EncodedSize(), len(enc))
		}
		g, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if !bytes.Equal(g.Encode(), enc) {
			t.Fatal("Decode/Encode round trip changed bytes")
		}
		// Behavioral identity on a sample of points.
		for i := 0; i < 200; i++ {
			p := []uint64{rng.Uint64() % span, rng.Uint64() % span, rng.Uint64() % span, rng.Uint64() % span}
			if f.MayContainPoint(p) != g.MayContainPoint(p) {
				t.Fatalf("decoded filter disagrees on %v", p)
			}
		}
	}
}

// Build must be deterministic: same coordinates (any insertion order
// within a dimension does not matter for bitmaps; for blooms the set of
// bits depends only on values) → same bytes.
func TestBuildDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := make([][]uint64, 200)
	for i := range pts {
		pts[i] = []uint64{rng.Uint64(), rng.Uint64()}
	}
	a := tensor.NewCoords(2, 0)
	for _, p := range pts {
		a.Append(p...)
	}
	b := tensor.NewCoords(2, 0)
	for i := len(pts) - 1; i >= 0; i-- {
		b.Append(pts[i]...)
	}
	fa, fb := Build(a), Build(b)
	if !bytes.Equal(fa.Encode(), fb.Encode()) {
		t.Fatal("Build not order-independent for identical coordinate sets")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	c := coordsOf(t, 2, []uint64{1, 2}, []uint64{3, 4})
	enc := Build(c).Encode()
	for _, tc := range []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)-3] }},
		{"trailing", func(b []byte) []byte { return append(b, 0) }},
		{"bad kind", func(b []byte) []byte { b[2] = 99; return b }},
		{"empty", func(b []byte) []byte { return b[:1] }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mut := tc.mut(append([]byte(nil), enc...))
			if _, err := Decode(mut); err == nil {
				t.Fatal("Decode accepted corrupted filter")
			}
		})
	}
}

func TestStats(t *testing.T) {
	c := coordsOf(t, 2, []uint64{0, 1 << 40}, []uint64{100, 1<<40 + 5})
	f := Build(c)
	st := f.Stats()
	if len(st) != 2 {
		t.Fatalf("Stats len = %d", len(st))
	}
	if st[0].Kind != "bitmap" || st[0].Bits != 101 || st[0].Set != 2 {
		t.Fatalf("dim0 stats = %+v", st[0])
	}
	if st[1].Kind != "bitmap" || st[1].Set != 2 {
		t.Fatalf("dim1 stats = %+v (extent 6 should be bitmap)", st[1])
	}
}
