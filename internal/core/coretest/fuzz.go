package coretest

import (
	"testing"

	"sparseart/internal/core"
	"sparseart/internal/tensor"
)

// FuzzOpen is the shared fuzz body for format payload parsers: Open
// must reject or accept arbitrary bytes without panicking, and any
// accepted reader must answer lookups without panicking either.
func FuzzOpen(f *testing.F, format core.Format) {
	shape, c := PaperExample()
	built, err := format.Build(c, shape)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(built.Payload)
	f.Add([]byte{})
	if len(built.Payload) > 8 {
		f.Add(built.Payload[:8])
		mangled := append([]byte(nil), built.Payload...)
		mangled[len(mangled)/2] ^= 0xFF
		f.Add(mangled)
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		r, err := format.Open(payload, shape)
		if err != nil {
			return
		}
		if r.NNZ() < 0 {
			t.Fatal("negative NNZ")
		}
		// Probe a few points; the reader must not panic even if the
		// payload was garbage it happened to accept.
		r.Lookup([]uint64{0, 0, 0})
		r.Lookup([]uint64{2, 2, 2})
		if it, ok := r.(core.Iterator); ok {
			count := 0
			it.Each(func(p []uint64, slot int) bool {
				count++
				return count < 1000 // bound the walk on nonsense structures
			})
		}
	})
}

var _ = tensor.Shape{} // keep the import for PaperExample's signature
