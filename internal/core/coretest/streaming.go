package coretest

import (
	"fmt"
	"math/rand"
	"testing"

	"sparseart/internal/core"
	"sparseart/internal/tensor"
)

// RunStreaming checks the streaming iteration contract against the
// callback walks it must mirror: for every format, core.Points must
// yield exactly the (point, slot) sequence Each visits, in the same
// order; core.RegionPoints must yield exactly the region-filtered
// subsequence; and both must honor early termination from the consumer.
// Native Streamer/RegionStreamer implementations and the
// Iterator/RegionScanner bridges go through the same assertions.
func RunStreaming(t *testing.T, formats []core.Format) {
	if len(formats) == 0 {
		t.Fatal("no formats to test")
	}
	rounds, maxPoints := 8, 500
	if testing.Short() {
		rounds, maxPoints = 3, 120
	}
	rng := rand.New(rand.NewSource(4242))
	for round := 0; round < rounds; round++ {
		shape := randomShape(rng)
		c := randomDataset(rng, shape, rng.Intn(maxPoints+1))
		t.Run(fmt.Sprintf("round%02d_%v_n%d", round, shape, c.Len()), func(t *testing.T) {
			streamingRound(t, formats, rng, shape, c)
		})
	}
}

// visitRec is one (point, slot) step of a walk, with the reused point
// slice copied out.
type visitRec struct {
	p    string
	slot int
}

func recordEach(r core.Reader) []visitRec {
	var out []visitRec
	r.(core.Iterator).Each(func(p []uint64, slot int) bool {
		out = append(out, visitRec{fmt.Sprint(p), slot})
		return true
	})
	return out
}

func recordSeq(seq core.PointSeq, stopAfter int) []visitRec {
	var out []visitRec
	for p, slot := range seq {
		out = append(out, visitRec{fmt.Sprint(p), slot})
		if stopAfter > 0 && len(out) >= stopAfter {
			break
		}
	}
	return out
}

func sameWalk(t *testing.T, kind core.Kind, label string, got, want []visitRec) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%v: %s yielded %d steps, want %d", kind, label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%v: %s step %d = %+v, want %+v", kind, label, i, got[i], want[i])
		}
	}
}

func streamingRound(t *testing.T, formats []core.Format, rng *rand.Rand, shape tensor.Shape, c *tensor.Coords) {
	readers, _ := openAll(t, formats, shape, c)
	for i, r := range readers {
		kind := formats[i].Kind()
		if _, ok := r.(core.Streamer); !ok {
			t.Errorf("%v: reader does not implement core.Streamer", kind)
		}
		seq, ok := core.Points(r)
		if !ok {
			t.Fatalf("%v: core.Points reports no walk", kind)
		}
		want := recordEach(r)
		sameWalk(t, kind, "Points", recordSeq(seq, 0), want)

		// A sequence must be restartable (each call to Points yields a
		// fresh walk) and stoppable mid-way without yielding further.
		if len(want) > 1 {
			stop := 1 + rng.Intn(len(want)-1)
			seq2, _ := core.Points(r)
			sameWalk(t, kind, "Points(early-stop)", recordSeq(seq2, stop), want[:stop])
		}

		// Region-restricted walk ≡ full walk + containment filter, for
		// random regions including degenerate 1-cell ones.
		for rq := 0; rq < 3; rq++ {
			start := make([]uint64, shape.Dims())
			size := make([]uint64, shape.Dims())
			for d := range shape {
				start[d] = uint64(rng.Int63n(int64(shape[d])))
				size[d] = 1 + uint64(rng.Int63n(int64(shape[d]-start[d])))
			}
			region, err := tensor.NewRegion(shape, start, size)
			if err != nil {
				t.Fatal(err)
			}
			var filtered []visitRec
			r.(core.Iterator).Each(func(p []uint64, slot int) bool {
				if region.Contains(p) {
					filtered = append(filtered, visitRec{fmt.Sprint(p), slot})
				}
				return true
			})
			rseq, ok := core.RegionPoints(r, region)
			if !ok {
				t.Fatalf("%v: core.RegionPoints reports no walk", kind)
			}
			sameWalk(t, kind, fmt.Sprintf("RegionPoints(%v)", region), recordSeq(rseq, 0), filtered)
			if len(filtered) > 1 {
				stop := 1 + rng.Intn(len(filtered)-1)
				rseq2, _ := core.RegionPoints(r, region)
				sameWalk(t, kind, "RegionPoints(early-stop)", recordSeq(rseq2, stop), filtered[:stop])
			}
		}
	}
}
