package coretest

import (
	"fmt"
	"math/rand"
	"testing"

	"sparseart/internal/core"
	"sparseart/internal/tensor"
)

// randomShape draws a 1–4 dimensional shape with small extents, biased
// toward anisotropy (mixing extent 1 axes with wide ones) since the
// 2D-remap formats are most sensitive to extent imbalance.
func randomShape(rng *rand.Rand) tensor.Shape {
	d := 1 + rng.Intn(4)
	shape := make(tensor.Shape, d)
	for i := range shape {
		shape[i] = uint64(1 + rng.Intn(12))
	}
	return shape
}

// RunDifferential drives randomized build→probe→range rounds through
// every format simultaneously, comparing all of them against a
// map-based oracle and against each other. Each round draws a fresh
// shape and dataset; every format builds it, must return a valid
// bijection as its permutation, must find every stored point at the
// permuted slot, must miss every absent probe, and must enumerate
// exactly the oracle's point set for random query regions. -short runs
// fewer and smaller rounds.
func RunDifferential(t *testing.T, formats []core.Format) {
	if len(formats) == 0 {
		t.Fatal("no formats to test")
	}
	rounds, maxPoints := 12, 600
	if testing.Short() {
		rounds, maxPoints = 4, 150
	}
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < rounds; round++ {
		shape := randomShape(rng)
		c := randomDataset(rng, shape, rng.Intn(maxPoints+1))
		t.Run(fmt.Sprintf("round%02d_%v_n%d", round, shape, c.Len()), func(t *testing.T) {
			differentialRound(t, formats, rng, shape, c)
		})
	}
}

// openAll builds and opens the dataset under every format, checking the
// permutation contract on the way.
func openAll(t *testing.T, formats []core.Format, shape tensor.Shape, c *tensor.Coords) ([]core.Reader, [][]int) {
	t.Helper()
	readers := make([]core.Reader, len(formats))
	perms := make([][]int, len(formats))
	for i, f := range formats {
		built, err := f.Build(c, shape)
		if err != nil {
			t.Fatalf("%v: Build: %v", f.Kind(), err)
		}
		if built.Perm != nil {
			if len(built.Perm) != c.Len() {
				t.Fatalf("%v: perm length %d for %d points", f.Kind(), len(built.Perm), c.Len())
			}
			if err := tensor.CheckPerm(built.Perm); err != nil {
				t.Fatalf("%v: perm is not a bijection: %v", f.Kind(), err)
			}
		}
		r, err := f.Open(built.Payload, shape)
		if err != nil {
			t.Fatalf("%v: Open: %v", f.Kind(), err)
		}
		readers[i] = r
		perms[i] = built.Perm
	}
	return readers, perms
}

func differentialRound(t *testing.T, formats []core.Format, rng *rand.Rand, shape tensor.Shape, c *tensor.Coords) {
	readers, perms := openAll(t, formats, shape, c)
	for i, r := range readers {
		if r.NNZ() != c.Len() {
			t.Fatalf("%v: NNZ %d, want %d", formats[i].Kind(), r.NNZ(), c.Len())
		}
	}

	lin, err := tensor.NewLinearizer(shape, tensor.RowMajor)
	if err != nil {
		t.Fatal(err)
	}
	oracle := map[uint64]int{} // linear address -> input index
	for i := 0; i < c.Len(); i++ {
		oracle[lin.Linearize(c.At(i))] = i
	}

	// Probe phase: a mixed sequence of stored and random points. Every
	// format must agree with the oracle on membership, and a hit must
	// land on the slot the format's own permutation dictates.
	vol, _ := shape.Volume()
	probe := make([]uint64, shape.Dims())
	for trial := 0; trial < 300; trial++ {
		var addr uint64
		if trial%2 == 0 && c.Len() > 0 {
			addr = lin.Linearize(c.At(rng.Intn(c.Len())))
		} else {
			addr = uint64(rng.Int63n(int64(vol)))
		}
		lin.Delinearize(addr, probe)
		inputIdx, want := oracle[addr]
		for i, r := range readers {
			slot, ok := r.Lookup(probe)
			if ok != want {
				t.Fatalf("%v: Lookup(%v) = %v, oracle says %v", formats[i].Kind(), probe, ok, want)
			}
			if !ok {
				continue
			}
			wantSlot := inputIdx
			if perms[i] != nil {
				wantSlot = perms[i][inputIdx]
			}
			if slot != wantSlot {
				t.Fatalf("%v: Lookup(%v) slot %d, want %d", formats[i].Kind(), probe, slot, wantSlot)
			}
		}
	}

	// Range phase: random query regions; every iterator-capable format
	// must enumerate exactly the oracle's points inside the region, and
	// a RegionScanner must match its own full-walk filter.
	for rq := 0; rq < 3; rq++ {
		start := make([]uint64, shape.Dims())
		size := make([]uint64, shape.Dims())
		for d := range shape {
			start[d] = uint64(rng.Int63n(int64(shape[d])))
			size[d] = 1 + uint64(rng.Int63n(int64(shape[d]-start[d])))
		}
		region, err := tensor.NewRegion(shape, start, size)
		if err != nil {
			t.Fatal(err)
		}
		want := map[uint64]bool{}
		for addr, idx := range oracle {
			if region.Contains(c.At(idx)) {
				want[addr] = true
			}
		}
		for i, r := range readers {
			it, ok := r.(core.Iterator)
			if !ok {
				t.Fatalf("%v: reader does not implement core.Iterator", formats[i].Kind())
			}
			got := map[uint64]bool{}
			it.Each(func(p []uint64, slot int) bool {
				if region.Contains(p) {
					got[lin.Linearize(p)] = true
				}
				return true
			})
			if len(got) != len(want) {
				t.Fatalf("%v: region %v: walk found %d points, oracle %d", formats[i].Kind(), region, len(got), len(want))
			}
			for addr := range want {
				if !got[addr] {
					t.Fatalf("%v: region %v: walk missed address %d", formats[i].Kind(), region, addr)
				}
			}
			if sc, ok := r.(core.RegionScanner); ok {
				scanned := map[uint64]bool{}
				sc.ScanRegion(region, func(p []uint64, slot int) bool {
					scanned[lin.Linearize(p)] = true
					return true
				})
				if len(scanned) != len(want) {
					t.Fatalf("%v: ScanRegion found %d points, oracle %d", formats[i].Kind(), len(scanned), len(want))
				}
			}
		}
	}
}
