// Package coretest is a conformance battery for storage organizations:
// every Format implementation must pass RunConformance. It checks the
// Build/Open/Lookup contract — payload self-description, the map-vector
// permutation semantics of Algorithms 1–3, found/not-found correctness
// against a brute-force model, determinism, parallel-build equivalence,
// and corrupt-payload rejection.
package coretest

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"sparseart/internal/core"
	"sparseart/internal/tensor"
)

// PaperExample returns the 3x3x3 tensor of the paper's Fig. 1 with its
// five points in the paper's order.
func PaperExample() (tensor.Shape, *tensor.Coords) {
	shape := tensor.Shape{3, 3, 3}
	c := tensor.NewCoords(3, 5)
	c.Append(0, 0, 1)
	c.Append(0, 1, 1)
	c.Append(0, 1, 2)
	c.Append(2, 2, 1)
	c.Append(2, 2, 2)
	return shape, c
}

// randomDataset draws n distinct points inside shape, in random order.
func randomDataset(rng *rand.Rand, shape tensor.Shape, n int) *tensor.Coords {
	lin, err := tensor.NewLinearizer(shape, tensor.RowMajor)
	if err != nil {
		panic(err)
	}
	vol, _ := shape.Volume()
	if uint64(n) > vol {
		n = int(vol)
	}
	seen := map[uint64]bool{}
	c := tensor.NewCoords(shape.Dims(), n)
	p := make([]uint64, shape.Dims())
	for len(seen) < n {
		addr := uint64(rng.Int63n(int64(vol)))
		if seen[addr] {
			continue
		}
		seen[addr] = true
		lin.Delinearize(addr, p)
		c.Append(p...)
	}
	return c
}

// checkRoundTrip builds the dataset, reopens the payload, and verifies
// that every stored point is found at the slot its permutation
// dictates and that absent probes miss.
func checkRoundTrip(t *testing.T, f core.Format, shape tensor.Shape, c *tensor.Coords) {
	t.Helper()
	built, err := f.Build(c, shape)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	n := c.Len()
	if built.Perm != nil {
		if len(built.Perm) != n {
			t.Fatalf("perm length %d for %d points", len(built.Perm), n)
		}
		if err := tensor.CheckPerm(built.Perm); err != nil {
			t.Fatalf("perm invalid: %v", err)
		}
	}
	r, err := f.Open(built.Payload, shape)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if r.NNZ() != n {
		t.Fatalf("NNZ = %d, want %d", r.NNZ(), n)
	}
	// Every stored point must be found at the permuted slot.
	for i := 0; i < n; i++ {
		slot, ok := r.Lookup(c.At(i))
		if !ok {
			t.Fatalf("point %v (index %d) not found", c.At(i), i)
		}
		want := i
		if built.Perm != nil {
			want = built.Perm[i]
		}
		if slot != want {
			t.Fatalf("point %v: slot %d, want %d", c.At(i), slot, want)
		}
	}
	// Probe points that are not stored.
	lin, err := tensor.NewLinearizer(shape, tensor.RowMajor)
	if err != nil {
		t.Fatal(err)
	}
	present := map[uint64]bool{}
	for i := 0; i < n; i++ {
		present[lin.Linearize(c.At(i))] = true
	}
	vol, _ := shape.Volume()
	p := make([]uint64, shape.Dims())
	misses := 0
	for addr := uint64(0); addr < vol && misses < 200; addr++ {
		if present[addr] {
			continue
		}
		misses++
		lin.Delinearize(addr, p)
		if _, ok := r.Lookup(p); ok {
			t.Fatalf("absent point %v reported found", p)
		}
	}
	// Out-of-shape and wrong-rank probes must miss, not panic.
	if _, ok := r.Lookup(append([]uint64(nil), shape...)); ok {
		t.Fatal("out-of-shape probe found")
	}
	if _, ok := r.Lookup(make([]uint64, shape.Dims()+1)); ok {
		t.Fatal("wrong-rank probe found")
	}
	if sz, ok := r.(core.PayloadSizer); ok {
		if w := sz.IndexWords(); n > 0 && w <= 0 {
			t.Fatalf("IndexWords = %d", w)
		}
	}
}

// RunConformance exercises the full battery against f. minDims is the
// smallest dimensionality the format supports (2 for TSP-style formats
// that require pairs; 1 for all of the paper's organizations).
func RunConformance(t *testing.T, f core.Format) {
	t.Run("PaperExample", func(t *testing.T) {
		shape, c := PaperExample()
		checkRoundTrip(t, f, shape, c)
	})

	t.Run("Empty", func(t *testing.T) {
		shape := tensor.Shape{4, 4}
		built, err := f.Build(tensor.NewCoords(2, 0), shape)
		if err != nil {
			t.Fatalf("Build of empty tensor: %v", err)
		}
		r, err := f.Open(built.Payload, shape)
		if err != nil {
			t.Fatalf("Open of empty payload: %v", err)
		}
		if r.NNZ() != 0 {
			t.Fatalf("NNZ = %d", r.NNZ())
		}
		if _, ok := r.Lookup([]uint64{1, 1}); ok {
			t.Fatal("empty tensor found a point")
		}
	})

	t.Run("SinglePoint", func(t *testing.T) {
		shape := tensor.Shape{5, 5, 5, 5}
		c := tensor.NewCoords(4, 1)
		c.Append(4, 0, 3, 2)
		checkRoundTrip(t, f, shape, c)
	})

	t.Run("OneDimensional", func(t *testing.T) {
		shape := tensor.Shape{64}
		c := tensor.NewCoords(1, 0)
		for _, x := range []uint64{5, 0, 63, 17} {
			c.Append(x)
		}
		checkRoundTrip(t, f, shape, c)
	})

	t.Run("FullTensor", func(t *testing.T) {
		shape := tensor.Shape{3, 3}
		c := tensor.NewCoords(2, 9)
		for i := uint64(0); i < 3; i++ {
			for j := uint64(0); j < 3; j++ {
				c.Append(i, j)
			}
		}
		checkRoundTrip(t, f, shape, c)
	})

	t.Run("RandomDatasets", func(t *testing.T) {
		rng := rand.New(rand.NewSource(7))
		shapes := []tensor.Shape{
			{50, 50},
			{16, 16, 16},
			{8, 8, 8, 8},
			{100, 3},        // strongly anisotropic
			{2, 1000},       // minimum extent first
			{5, 4, 3, 2, 2}, // 5-dimensional
		}
		for _, shape := range shapes {
			for _, n := range []int{1, 17, 300} {
				c := randomDataset(rng, shape, n)
				t.Run(fmt.Sprintf("%v_n%d", shape, c.Len()), func(t *testing.T) {
					checkRoundTrip(t, f, shape, c)
				})
			}
		}
	})

	t.Run("Deterministic", func(t *testing.T) {
		rng := rand.New(rand.NewSource(11))
		shape := tensor.Shape{20, 20, 20}
		c := randomDataset(rng, shape, 200)
		a, err := f.Build(c, shape)
		if err != nil {
			t.Fatal(err)
		}
		b, err := f.Build(c.Clone(), shape)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Payload, b.Payload) {
			t.Fatal("two builds of the same input differ")
		}
	})

	t.Run("ParallelBuildEqualsSerial", func(t *testing.T) {
		setter, ok := f.(core.OptionSetter)
		if !ok {
			t.Skip("format has no options")
		}
		rng := rand.New(rand.NewSource(13))
		shape := tensor.Shape{30, 30, 30}
		c := randomDataset(rng, shape, 5000)
		serial, err := setter.WithOptions(core.Options{Parallelism: 1}).Build(c, shape)
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := setter.WithOptions(core.Options{Parallelism: 8}).Build(c, shape)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(serial.Payload, parallel.Payload) {
			t.Fatal("parallel build payload differs from serial")
		}
		if (serial.Perm == nil) != (parallel.Perm == nil) {
			t.Fatal("perm presence differs")
		}
		for i := range serial.Perm {
			if serial.Perm[i] != parallel.Perm[i] {
				t.Fatalf("perm differs at %d", i)
			}
		}
	})

	t.Run("IteratorVisitsEveryPointOnce", func(t *testing.T) {
		rng := rand.New(rand.NewSource(17))
		shape := tensor.Shape{9, 7, 8}
		c := randomDataset(rng, shape, 120)
		built, err := f.Build(c, shape)
		if err != nil {
			t.Fatal(err)
		}
		r, err := f.Open(built.Payload, shape)
		if err != nil {
			t.Fatal(err)
		}
		it, ok := r.(core.Iterator)
		if !ok {
			t.Fatal("reader does not implement core.Iterator")
		}
		lin, err := tensor.NewLinearizer(shape, tensor.RowMajor)
		if err != nil {
			t.Fatal(err)
		}
		want := map[uint64]int{} // addr -> expected slot
		for i := 0; i < c.Len(); i++ {
			slot := i
			if built.Perm != nil {
				slot = built.Perm[i]
			}
			want[lin.Linearize(c.At(i))] = slot
		}
		slotSeen := make([]bool, c.Len())
		visited := 0
		it.Each(func(p []uint64, slot int) bool {
			visited++
			addr := lin.Linearize(p)
			wantSlot, ok := want[addr]
			if !ok {
				t.Fatalf("Each visited point %v that was never stored", p)
			}
			if slot != wantSlot {
				t.Fatalf("point %v: Each slot %d, want %d", p, slot, wantSlot)
			}
			if slot < 0 || slot >= c.Len() || slotSeen[slot] {
				t.Fatalf("slot %d out of range or repeated", slot)
			}
			slotSeen[slot] = true
			return true
		})
		if visited != c.Len() {
			t.Fatalf("Each visited %d of %d points", visited, c.Len())
		}
		// Early termination stops the walk.
		calls := 0
		it.Each(func(p []uint64, slot int) bool {
			calls++
			return calls < 5
		})
		if calls != 5 {
			t.Fatalf("early stop visited %d points, want 5", calls)
		}
	})

	t.Run("RegionScanMatchesFilter", func(t *testing.T) {
		rng := rand.New(rand.NewSource(23))
		shape := tensor.Shape{10, 10, 10}
		c := randomDataset(rng, shape, 200)
		built, err := f.Build(c, shape)
		if err != nil {
			t.Fatal(err)
		}
		r, err := f.Open(built.Payload, shape)
		if err != nil {
			t.Fatal(err)
		}
		it, ok := r.(core.Iterator)
		if !ok {
			t.Skip("no iterator")
		}
		region, err := tensor.NewRegion(shape, []uint64{2, 3, 0}, []uint64{5, 4, 7})
		if err != nil {
			t.Fatal(err)
		}
		want := map[int]bool{}
		it.Each(func(p []uint64, slot int) bool {
			if region.Contains(p) {
				want[slot] = true
			}
			return true
		})
		scanner, ok := r.(core.RegionScanner)
		if !ok {
			return // generic fallback is exactly the filter above
		}
		got := map[int]bool{}
		scanner.ScanRegion(region, func(p []uint64, slot int) bool {
			if !region.Contains(p) {
				t.Fatalf("ScanRegion emitted %v outside the region", p)
			}
			got[slot] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("ScanRegion found %d points, filter found %d", len(got), len(want))
		}
		for slot := range want {
			if !got[slot] {
				t.Fatalf("ScanRegion missed slot %d", slot)
			}
		}
	})

	t.Run("BuildDoesNotMutateInput", func(t *testing.T) {
		shape, c := PaperExample()
		before := c.Clone()
		if _, err := f.Build(c, shape); err != nil {
			t.Fatal(err)
		}
		if !c.Equal(before) {
			t.Fatal("Build mutated its input")
		}
	})

	t.Run("Errors", func(t *testing.T) {
		shape := tensor.Shape{4, 4}
		c := tensor.NewCoords(3, 1)
		c.Append(1, 1, 1)
		if _, err := f.Build(c, shape); err == nil {
			t.Error("dims mismatch accepted")
		}
		if _, err := f.Build(tensor.NewCoords(2, 0), tensor.Shape{0, 4}); err == nil {
			t.Error("invalid shape accepted")
		}
		if _, err := f.Open([]byte{1, 2, 3}, shape); err == nil {
			t.Error("garbage payload accepted")
		}
		if _, err := f.Open(nil, shape); err == nil {
			t.Error("nil payload accepted")
		}
		// A valid payload truncated mid-body must be rejected.
		_, pc := PaperExample()
		built, err := f.Build(pc, tensor.Shape{3, 3, 3})
		if err != nil {
			t.Fatal(err)
		}
		if len(built.Payload) > 10 {
			if _, err := f.Open(built.Payload[:len(built.Payload)-7], tensor.Shape{3, 3, 3}); err == nil {
				t.Error("truncated payload accepted")
			}
		}
	})
}
