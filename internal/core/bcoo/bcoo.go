// Package bcoo implements a HiCOO-style blocked coordinate organization
// (Li, Sun, Vuduc, SC'18), the COO variant the paper's §II-A mentions
// but leaves out of its comparison matrix. The tensor is partitioned
// into aligned blocks of 2^bits cells per dimension; points are sorted
// by (block, within-block offset) and stored as a block directory (full-
// width block coordinates plus a pointer vector) and one byte per
// dimension of within-block offset per point.
//
// Against the paper's baselines this trades COO's d×8 bytes per point
// for d×1 bytes plus amortized block headers — a large win whenever
// points cluster (TSP bands, MSP blobs) and a configurable loss on
// pathologically scattered data. The ablation benchmarks quantify it.
package bcoo

import (
	"fmt"

	"sparseart/internal/buf"
	"sparseart/internal/core"
	"sparseart/internal/obs"
	"sparseart/internal/psort"
	"sparseart/internal/tensor"
)

const magic = 0x314f4342 // "BCO1"

// DefaultBlockBits gives 128-cell block extents, HiCOO's choice.
const DefaultBlockBits = 7

// Format is the blocked-COO organization.
type Format struct {
	// BlockBits is log2 of the block extent per dimension, in [1, 8]
	// so offsets fit one byte; 0 means DefaultBlockBits.
	BlockBits uint8
	Opts      core.Options
}

// New returns the format with HiCOO's default 128-cell blocks.
func New() Format { return Format{} }

func init() { core.Register(New()) }

// Kind implements core.Format.
func (Format) Kind() core.Kind { return core.BCOO }

// WithOptions implements core.OptionSetter.
func (f Format) WithOptions(o core.Options) core.Format {
	f.Opts = o
	return f
}

func (f Format) bits() (uint8, error) {
	b := f.BlockBits
	if b == 0 {
		b = DefaultBlockBits
	}
	if b < 1 || b > 8 {
		return 0, fmt.Errorf("bcoo: block bits %d outside [1,8]", b)
	}
	return b, nil
}

// Build implements core.Format: bucket points into blocks, sort by
// (block, local offset), and emit the block directory plus byte-wide
// local offsets.
func (f Format) Build(c *tensor.Coords, shape tensor.Shape) (*core.BuildResult, error) {
	defer obs.Time("core.build", "kind", "BCOO")()
	obs.Count("core.build.points", int64(c.Len()), "kind", "BCOO")
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	if c.Dims() != shape.Dims() {
		return nil, fmt.Errorf("bcoo: %d-dim coords for %d-dim shape", c.Dims(), shape.Dims())
	}
	bits, err := f.bits()
	if err != nil {
		return nil, err
	}
	d := shape.Dims()
	n := c.Len()
	mask := uint64(1)<<bits - 1

	for i := 0; i < n; i++ {
		if !shape.Contains(c.At(i)) {
			return nil, fmt.Errorf("bcoo: point %v outside shape %v", c.At(i), shape)
		}
	}

	// Sort by block tuple, then by local tuple, ties by input index.
	order := psort.SortPerm(n, f.Opts.Parallelism, func(i, j int) bool {
		pi, pj := c.At(i), c.At(j)
		for k := 0; k < d; k++ {
			bi, bj := pi[k]>>bits, pj[k]>>bits
			if bi != bj {
				return bi < bj
			}
		}
		for k := 0; k < d; k++ {
			li, lj := pi[k]&mask, pj[k]&mask
			if li != lj {
				return li < lj
			}
		}
		return i < j
	})

	// One pass emits the directory and the local offsets.
	var blocks []uint64 // nBlocks × d block coordinates, flat
	var bptr []uint64   // nBlocks+1 offsets into the point array
	locals := make([]byte, 0, n*d)
	prev := make([]uint64, d)
	for slot, idx := range order {
		p := c.At(idx)
		newBlock := slot == 0
		for k := 0; k < d && !newBlock; k++ {
			if p[k]>>bits != prev[k] {
				newBlock = true
			}
		}
		if newBlock {
			for k := 0; k < d; k++ {
				prev[k] = p[k] >> bits
			}
			blocks = append(blocks, prev...)
			bptr = append(bptr, uint64(slot))
		}
		for k := 0; k < d; k++ {
			locals = append(locals, byte(p[k]&mask))
		}
	}
	bptr = append(bptr, uint64(n))
	if n == 0 {
		bptr = []uint64{0}
	}
	nBlocks := len(bptr) - 1

	w := buf.NewWriter(32 + 8*(len(blocks)+len(bptr)+d) + len(locals))
	w.U32(magic)
	w.U16(uint16(d))
	w.U8(bits)
	w.U8(0) // reserved
	w.RawU64s(shape)
	w.U64(uint64(nBlocks))
	w.U64(uint64(n))
	w.RawU64s(blocks)
	w.RawU64s(bptr)
	w.Bytes32(locals)
	return &core.BuildResult{Payload: w.Bytes(), Perm: tensor.InvertPerm(order)}, nil
}

// Open implements core.Format.
func (f Format) Open(payload []byte, shape tensor.Shape) (core.Reader, error) {
	r := buf.NewReader(payload)
	r.Expect(magic, "BCOO payload")
	d := int(r.U16())
	bits := r.U8()
	r.U8()
	stored := tensor.Shape(r.RawU64s(uint64(d)))
	nBlocks := r.U64()
	n := r.U64()
	blocks := r.RawU64s(nBlocks * uint64(d))
	bptr := r.RawU64s(nBlocks + 1)
	locals := r.Bytes32()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("bcoo: %w", err)
	}
	if !stored.Equal(shape) {
		return nil, fmt.Errorf("bcoo: payload shape %v does not match %v", stored, shape)
	}
	if bits < 1 || bits > 8 {
		return nil, fmt.Errorf("bcoo: corrupt block bits %d", bits)
	}
	if uint64(len(locals)) != n*uint64(d) {
		return nil, fmt.Errorf("bcoo: %d local bytes for %d points", len(locals), n)
	}
	if nBlocks > 0 && bptr[nBlocks] != n {
		return nil, fmt.Errorf("bcoo: pointer sentinel %d != %d points", bptr[nBlocks], n)
	}
	if bptr[0] != 0 {
		return nil, fmt.Errorf("bcoo: pointer vector does not start at 0")
	}
	for i := 1; i < len(bptr); i++ {
		if bptr[i] < bptr[i-1] || bptr[i] > n {
			return nil, fmt.Errorf("bcoo: pointer vector not monotone at %d", i)
		}
	}
	return &reader{
		shape: stored, dims: d, bits: bits,
		blocks: blocks, bptr: bptr, locals: locals,
		probes: obs.NewSampled(obs.Global().Counter("core.probe", "kind", "BCOO"), obs.DefaultSamplePeriod),
	}, nil
}

type reader struct {
	shape  tensor.Shape
	dims   int
	bits   uint8
	blocks []uint64
	bptr   []uint64
	locals []byte
	// probes counts Lookup calls, sampled: the shared core.probe
	// counter is touched once per flush period, not per point.
	probes *obs.SampledCounter
}

// NNZ implements core.Reader.
func (r *reader) NNZ() int { return len(r.locals) / r.dims }

// IndexWords implements core.PayloadSizer, counting the byte-wide local
// offsets at their real cost in 8-byte words.
func (r *reader) IndexWords() int {
	return len(r.blocks) + len(r.bptr) + (len(r.locals)+7)/8
}

// Blocks returns the number of occupied blocks.
func (r *reader) Blocks() int { return len(r.bptr) - 1 }

// cmpBlock compares the probe's block tuple against directory entry bi.
func (r *reader) cmpBlock(p []uint64, bi int) int {
	for k := 0; k < r.dims; k++ {
		pb := p[k] >> r.bits
		eb := r.blocks[bi*r.dims+k]
		if pb != eb {
			if pb < eb {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Lookup implements core.Reader: binary-search the block directory,
// then binary-search the block's sorted local offsets.
func (r *reader) Lookup(p []uint64) (int, bool) {
	r.probes.Inc()
	if len(p) != r.dims || !r.shape.Contains(p) {
		return 0, false
	}
	lo, hi := 0, r.Blocks()
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.cmpBlock(p, mid) > 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= r.Blocks() || r.cmpBlock(p, lo) != 0 {
		return 0, false
	}
	mask := uint64(1)<<r.bits - 1
	want := make([]byte, r.dims)
	for k := 0; k < r.dims; k++ {
		want[k] = byte(p[k] & mask)
	}
	s, e := int(r.bptr[lo]), int(r.bptr[lo+1])
	for s < e {
		mid := int(uint(s+e) >> 1)
		switch cmpLocal(r.locals[mid*r.dims:(mid+1)*r.dims], want) {
		case -1:
			s = mid + 1
		case 1:
			e = mid
		default:
			// Leftmost match, in case of duplicate input points.
			for mid > int(r.bptr[lo]) &&
				cmpLocal(r.locals[(mid-1)*r.dims:mid*r.dims], want) == 0 {
				mid--
			}
			return mid, true
		}
	}
	return 0, false
}

func cmpLocal(a, b []byte) int {
	for k := range a {
		if a[k] != b[k] {
			if a[k] < b[k] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Each implements core.Iterator, visiting points in packed order. The
// point slice is reused; callbacks must not retain it.
func (r *reader) Each(visit func(p []uint64, slot int) bool) {
	p := make([]uint64, r.dims)
	for bi := 0; bi < r.Blocks(); bi++ {
		for slot := int(r.bptr[bi]); slot < int(r.bptr[bi+1]); slot++ {
			for k := 0; k < r.dims; k++ {
				p[k] = r.blocks[bi*r.dims+k]<<r.bits | uint64(r.locals[slot*r.dims+k])
			}
			if !visit(p, slot) {
				return
			}
		}
	}
}

// Points implements core.Streamer: the same block walk as Each, as a
// lazy range-over-func sequence. The point slice is reused between
// yields.
func (r *reader) Points() core.PointSeq {
	return func(yield func(p []uint64, slot int) bool) {
		p := make([]uint64, r.dims)
		for bi := 0; bi < r.Blocks(); bi++ {
			for slot := int(r.bptr[bi]); slot < int(r.bptr[bi+1]); slot++ {
				for k := 0; k < r.dims; k++ {
					p[k] = r.blocks[bi*r.dims+k]<<r.bits | uint64(r.locals[slot*r.dims+k])
				}
				if !yield(p, slot) {
					return
				}
			}
		}
	}
}

var (
	_ core.Format       = Format{}
	_ core.Reader       = (*reader)(nil)
	_ core.PayloadSizer = (*reader)(nil)
	_ core.Iterator     = (*reader)(nil)
	_ core.Streamer     = (*reader)(nil)
)
