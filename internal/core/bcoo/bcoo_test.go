package bcoo

import (
	"testing"

	"sparseart/internal/core"
	"sparseart/internal/core/coo"
	"sparseart/internal/core/coretest"
	"sparseart/internal/tensor"
)

func TestConformanceDefaultBlocks(t *testing.T) {
	coretest.RunConformance(t, New())
}

func TestConformanceTinyBlocks(t *testing.T) {
	coretest.RunConformance(t, Format{BlockBits: 1})
}

func TestConformanceByteBlocks(t *testing.T) {
	coretest.RunConformance(t, Format{BlockBits: 8})
}

func TestKindAndParse(t *testing.T) {
	if New().Kind() != core.BCOO {
		t.Fatal("kind")
	}
	k, err := core.ParseKind("hicoo")
	if err != nil || k != core.BCOO {
		t.Fatalf("ParseKind(hicoo) = %v, %v", k, err)
	}
}

func TestBlockDirectoryStructure(t *testing.T) {
	// Points in two 4-cell blocks of a 16x16 tensor (bits=2).
	shape := tensor.Shape{16, 16}
	c := tensor.NewCoords(2, 0)
	c.Append(1, 2)  // block (0,0), local (1,2)
	c.Append(3, 3)  // block (0,0), local (3,3)
	c.Append(13, 6) // block (3,1), local (1,2)
	c.Append(12, 4) // block (3,1), local (0,0)
	f := Format{BlockBits: 2}
	built, err := f.Build(c, shape)
	if err != nil {
		t.Fatal(err)
	}
	r, err := f.Open(built.Payload, shape)
	if err != nil {
		t.Fatal(err)
	}
	rd := r.(*reader)
	if rd.Blocks() != 2 {
		t.Fatalf("blocks = %d, want 2", rd.Blocks())
	}
	if rd.blocks[0] != 0 || rd.blocks[1] != 0 || rd.blocks[2] != 3 || rd.blocks[3] != 1 {
		t.Fatalf("directory = %v", rd.blocks)
	}
	if rd.bptr[0] != 0 || rd.bptr[1] != 2 || rd.bptr[2] != 4 {
		t.Fatalf("bptr = %v", rd.bptr)
	}
	// Within block (3,1) the points sort by local offset: (0,0) then
	// (1,2), so input point 3 lands at slot 2.
	if built.Perm[3] != 2 || built.Perm[2] != 3 {
		t.Fatalf("perm = %v", built.Perm)
	}
}

func TestRejectsBadBlockBits(t *testing.T) {
	shape := tensor.Shape{8, 8}
	c := tensor.NewCoords(2, 1)
	c.Append(1, 1)
	if _, err := (Format{BlockBits: 9}).Build(c, shape); err == nil {
		t.Fatal("bits 9 accepted")
	}
}

func TestOpenRejectsShapeMismatch(t *testing.T) {
	shape, c := coretest.PaperExample()
	built, err := New().Build(c, shape)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New().Open(built.Payload, tensor.Shape{3, 3, 4}); err == nil {
		t.Fatal("payload opened under different shape")
	}
}

// TestClusteredDataBeatsCOO: the design claim — on clustered data BCOO's
// index is far below COO's d words per point.
func TestClusteredDataBeatsCOO(t *testing.T) {
	shape := tensor.Shape{4096, 4096}
	c := tensor.NewCoords(2, 0)
	// A dense 64x64 blob: exactly the clustered case.
	for x := uint64(1000); x < 1064; x++ {
		for y := uint64(2000); y < 2064; y++ {
			c.Append(x, y)
		}
	}
	bcooBuilt, err := New().Build(c, shape)
	if err != nil {
		t.Fatal(err)
	}
	cooBuilt, err := coo.New().Build(c, shape)
	if err != nil {
		t.Fatal(err)
	}
	if len(bcooBuilt.Payload)*4 > len(cooBuilt.Payload) {
		t.Fatalf("BCOO %d bytes vs COO %d: want at least 4x smaller on clustered data",
			len(bcooBuilt.Payload), len(cooBuilt.Payload))
	}
}

func TestLargeCoordinatesBeyondByteRange(t *testing.T) {
	// Block coordinates carry the high bits, so extents far beyond 256
	// must round-trip.
	shape := tensor.Shape{1 << 40, 1 << 20}
	c := tensor.NewCoords(2, 0)
	c.Append((1<<40)-1, (1<<20)-1)
	c.Append(0, 0)
	c.Append(123456789012, 987654)
	built, err := New().Build(c, shape)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New().Open(built.Payload, shape)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.Len(); i++ {
		if _, ok := r.Lookup(c.At(i)); !ok {
			t.Fatalf("point %v lost", c.At(i))
		}
	}
}

func FuzzOpen(f *testing.F) { coretest.FuzzOpen(f, New()) }
