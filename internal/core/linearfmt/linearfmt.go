// Package linearfmt implements the LINEAR organization of §II-B: each
// point's coordinates are transformed into a row-major linear address,
// shrinking the index from d words per point to one. Build spends O(n·d)
// on the transform; reading scans the unsorted address list per probe,
// O(n · n_read) like COO, but over d× fewer words.
//
// The linear-address overflow risk the paper flags is handled the way
// the paper suggests — block decomposition with per-block local
// boundaries — by internal/store.Chunked; this package itself refuses
// shapes whose volume does not fit in uint64.
package linearfmt

import (
	"fmt"

	"sparseart/internal/buf"
	"sparseart/internal/core"
	"sparseart/internal/obs"
	"sparseart/internal/tensor"
)

const magic = 0x314e494c // "LIN1"

// Format is the LINEAR organization.
type Format struct {
	Opts core.Options
}

// New returns the format with the paper's serial options.
func New() Format { return Format{} }

func init() { core.Register(New()) }

// Kind implements core.Format.
func (Format) Kind() core.Kind { return core.Linear }

// WithOptions implements core.OptionSetter.
func (f Format) WithOptions(o core.Options) core.Format {
	f.Opts = o
	return f
}

// Build implements core.Format, transforming every coordinate to its
// row-major linear address within shape. The input order is preserved
// (identity permutation), matching the paper's unsorted analysis.
func (f Format) Build(c *tensor.Coords, shape tensor.Shape) (*core.BuildResult, error) {
	defer obs.Time("core.build", "kind", "LINEAR")()
	obs.Count("core.build.points", int64(c.Len()), "kind", "LINEAR")
	if c.Dims() != shape.Dims() {
		return nil, fmt.Errorf("linearfmt: %d-dim coords for %d-dim shape", c.Dims(), shape.Dims())
	}
	lin, err := tensor.NewLinearizer(shape, tensor.RowMajor)
	if err != nil {
		return nil, fmt.Errorf("linearfmt: %w", err)
	}
	n := c.Len()
	w := buf.NewWriter(16 + 8*n)
	w.U32(magic)
	w.U16(uint16(shape.Dims()))
	w.U16(0) // reserved
	w.U64(uint64(n))
	for i := 0; i < n; i++ {
		p := c.At(i)
		if !shape.Contains(p) {
			return nil, fmt.Errorf("linearfmt: point %v outside shape %v", p, shape)
		}
		w.U64(lin.Linearize(p))
	}
	return &core.BuildResult{Payload: w.Bytes()}, nil
}

// Open implements core.Format.
func (f Format) Open(payload []byte, shape tensor.Shape) (core.Reader, error) {
	r := buf.NewReader(payload)
	r.Expect(magic, "LINEAR payload")
	dims := int(r.U16())
	r.U16()
	n := r.U64()
	addrs := r.RawU64s(n)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("linearfmt: %w", err)
	}
	if dims != shape.Dims() {
		return nil, fmt.Errorf("linearfmt: payload has %d dims, shape has %d", dims, shape.Dims())
	}
	lin, err := tensor.NewLinearizer(shape, tensor.RowMajor)
	if err != nil {
		return nil, fmt.Errorf("linearfmt: %w", err)
	}
	vol, _ := shape.Volume()
	for i, a := range addrs {
		if a >= vol {
			return nil, fmt.Errorf("linearfmt: address %d at %d exceeds volume %d", a, i, vol)
		}
	}
	return &reader{
		addrs: addrs, lin: lin,
		probes: obs.NewSampled(obs.Global().Counter("core.probe", "kind", "LINEAR"), obs.DefaultSamplePeriod),
	}, nil
}

type reader struct {
	addrs []uint64
	lin   *tensor.Linearizer
	// probes counts Lookup calls, sampled: the shared core.probe
	// counter is touched once per flush period, not per point.
	probes *obs.SampledCounter
}

// NNZ implements core.Reader.
func (r *reader) NNZ() int { return len(r.addrs) }

// IndexWords implements core.PayloadSizer: one word per point, the O(n)
// of Table I.
func (r *reader) IndexWords() int { return len(r.addrs) }

// Lookup implements core.Reader by linearizing the probe and scanning
// the unsorted address list.
func (r *reader) Lookup(p []uint64) (int, bool) {
	r.probes.Inc()
	if !r.lin.Shape().Contains(p) {
		return 0, false
	}
	addr := r.lin.Linearize(p)
	for i, a := range r.addrs {
		if a == addr {
			return i, true
		}
	}
	return 0, false
}

// Each implements core.Iterator, visiting points in payload order. The
// point slice is reused; callbacks must not retain it.
func (r *reader) Each(visit func(p []uint64, slot int) bool) {
	p := make([]uint64, r.lin.Shape().Dims())
	for i, a := range r.addrs {
		r.lin.Delinearize(a, p)
		if !visit(p, i) {
			return
		}
	}
}

// Points implements core.Streamer: a lazy walk delinearizing one
// address per step. The point slice is reused between yields.
func (r *reader) Points() core.PointSeq {
	return func(yield func(p []uint64, slot int) bool) {
		p := make([]uint64, r.lin.Shape().Dims())
		for i, a := range r.addrs {
			r.lin.Delinearize(a, p)
			if !yield(p, i) {
				return
			}
		}
	}
}

// Addresses exposes the raw linear addresses for inspection tools.
func (r *reader) Addresses() []uint64 { return r.addrs }

var (
	_ core.Format       = Format{}
	_ core.Reader       = (*reader)(nil)
	_ core.PayloadSizer = (*reader)(nil)
	_ core.Iterator     = (*reader)(nil)
	_ core.Streamer     = (*reader)(nil)
)
