package linearfmt

import (
	"testing"

	"sparseart/internal/buf"
	"sparseart/internal/core"
	"sparseart/internal/core/coretest"
	"sparseart/internal/tensor"
)

func TestConformance(t *testing.T) {
	coretest.RunConformance(t, New())
}

func TestKind(t *testing.T) {
	if New().Kind() != core.Linear {
		t.Fatal("kind")
	}
}

func TestPaperFig1Addresses(t *testing.T) {
	// Fig. 1(a): the example's five points linearize to 1,4,5,25,26.
	shape, c := coretest.PaperExample()
	built, err := New().Build(c, shape)
	if err != nil {
		t.Fatal(err)
	}
	r := buf.NewReader(built.Payload)
	r.U32() // magic
	r.U16() // dims
	r.U16()
	n := r.U64()
	addrs := r.RawU64s(n)
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	want := []uint64{1, 4, 5, 25, 26}
	for i, a := range addrs {
		if a != want[i] {
			t.Fatalf("addresses = %v, want %v", addrs, want)
		}
	}
	if built.Perm != nil {
		t.Fatal("LINEAR must preserve input order (identity perm)")
	}
}

func TestIndexWordsMatchesTableI(t *testing.T) {
	// Table I: LINEAR space is O(n) — exactly n words.
	shape, c := coretest.PaperExample()
	built, err := New().Build(c, shape)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New().Open(built.Payload, shape)
	if err != nil {
		t.Fatal(err)
	}
	if w := r.(core.PayloadSizer).IndexWords(); w != c.Len() {
		t.Fatalf("IndexWords = %d, want %d", w, c.Len())
	}
}

func TestRejectsOverflowShape(t *testing.T) {
	// §II-B names overflow as LINEAR's risk; the format must refuse
	// rather than wrap.
	shape := tensor.Shape{1 << 32, 1 << 33}
	c := tensor.NewCoords(2, 1)
	c.Append(0, 0)
	if _, err := New().Build(c, shape); err == nil {
		t.Fatal("overflowing shape accepted")
	}
}

func TestRejectsOutOfShapePoint(t *testing.T) {
	shape := tensor.Shape{4, 4}
	c := tensor.NewCoords(2, 1)
	c.Append(4, 0)
	if _, err := New().Build(c, shape); err == nil {
		t.Fatal("out-of-shape point accepted")
	}
}

func TestOpenRejectsWrongRank(t *testing.T) {
	shape, c := coretest.PaperExample()
	built, err := New().Build(c, shape)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New().Open(built.Payload, tensor.Shape{9, 9}); err == nil {
		t.Fatal("payload opened under wrong rank")
	}
}

func TestLookupUsesShapeGeometry(t *testing.T) {
	// The same payload opened under the build shape must resolve
	// points by address, so a probe whose address collides with a
	// stored address but whose coordinates differ cannot exist.
	shape := tensor.Shape{4, 8}
	c := tensor.NewCoords(2, 0)
	c.Append(1, 2) // addr 10
	built, err := New().Build(c, shape)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New().Open(built.Payload, shape)
	if err != nil {
		t.Fatal(err)
	}
	if slot, ok := r.Lookup([]uint64{1, 2}); !ok || slot != 0 {
		t.Fatalf("Lookup = %d,%v", slot, ok)
	}
	if _, ok := r.Lookup([]uint64{2, 2}); ok {
		t.Fatal("wrong point found")
	}
}

func FuzzOpen(f *testing.F) { coretest.FuzzOpen(f, New()) }
