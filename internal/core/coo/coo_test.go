package coo

import (
	"testing"

	"sparseart/internal/core"
	"sparseart/internal/core/coretest"
	"sparseart/internal/tensor"
)

func TestConformanceUnsorted(t *testing.T) {
	coretest.RunConformance(t, New())
}

func TestConformanceSorted(t *testing.T) {
	coretest.RunConformance(t, NewSorted())
}

func TestKinds(t *testing.T) {
	if New().Kind() != core.COO {
		t.Fatal("unsorted kind")
	}
	if NewSorted().Kind() != core.COOSorted {
		t.Fatal("sorted kind")
	}
}

func TestUnsortedPreservesInputOrder(t *testing.T) {
	// §II-A: the unsorted baseline serializes the input as-is, so the
	// permutation is identity (nil) and the payload stores the points
	// in input order.
	shape, c := coretest.PaperExample()
	built, err := New().Build(c, shape)
	if err != nil {
		t.Fatal(err)
	}
	if built.Perm != nil {
		t.Fatal("unsorted COO returned a non-identity perm")
	}
	r, err := New().Open(built.Payload, shape)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.Len(); i++ {
		slot, ok := r.Lookup(c.At(i))
		if !ok || slot != i {
			t.Fatalf("point %d at slot %d (ok=%v)", i, slot, ok)
		}
	}
}

func TestSortedOrdersByLinearAddress(t *testing.T) {
	shape := tensor.Shape{4, 4}
	c := tensor.NewCoords(2, 0)
	c.Append(3, 3) // addr 15
	c.Append(0, 1) // addr 1
	c.Append(2, 0) // addr 8
	built, err := NewSorted().Build(c, shape)
	if err != nil {
		t.Fatal(err)
	}
	// Input order (15, 1, 8) sorts to (1, 8, 15): perm = {2, 0, 1}.
	want := []int{2, 0, 1}
	for i, p := range built.Perm {
		if p != want[i] {
			t.Fatalf("perm = %v, want %v", built.Perm, want)
		}
	}
}

func TestSortedRejectsUnsortedPayloadAndViceVersa(t *testing.T) {
	shape, c := coretest.PaperExample()
	unsorted, err := New().Build(c, shape)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSorted().Open(unsorted.Payload, shape); err == nil {
		t.Fatal("sorted format opened an unsorted payload")
	}
	sorted, err := NewSorted().Build(c, shape)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New().Open(sorted.Payload, shape); err == nil {
		t.Fatal("unsorted format opened a sorted payload")
	}
}

func TestOpenRejectsDimsMismatch(t *testing.T) {
	shape, c := coretest.PaperExample()
	built, err := New().Build(c, shape)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New().Open(built.Payload, tensor.Shape{3, 3}); err == nil {
		t.Fatal("payload opened under wrong rank")
	}
}

func TestIndexWordsMatchesTableI(t *testing.T) {
	// Table I: COO space is O(n x d) — exactly n*d words here.
	shape, c := coretest.PaperExample()
	built, err := New().Build(c, shape)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New().Open(built.Payload, shape)
	if err != nil {
		t.Fatal(err)
	}
	if w := r.(core.PayloadSizer).IndexWords(); w != c.Len()*shape.Dims() {
		t.Fatalf("IndexWords = %d, want %d", w, c.Len()*shape.Dims())
	}
}

func TestDuplicatePointsLookupFindsOne(t *testing.T) {
	shape := tensor.Shape{4, 4}
	c := tensor.NewCoords(2, 0)
	c.Append(1, 1)
	c.Append(1, 1)
	c.Append(2, 2)
	for _, f := range []Format{New(), NewSorted()} {
		built, err := f.Build(c, shape)
		if err != nil {
			t.Fatal(err)
		}
		r, err := f.Open(built.Payload, shape)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := r.Lookup([]uint64{1, 1}); !ok {
			t.Fatalf("sorted=%v: duplicate point not found", f.Sorted)
		}
		if r.NNZ() != 3 {
			t.Fatalf("sorted=%v: NNZ = %d", f.Sorted, r.NNZ())
		}
	}
}

func FuzzOpenUnsorted(f *testing.F) { coretest.FuzzOpen(f, New()) }

func FuzzOpenSorted(f *testing.F) { coretest.FuzzOpen(f, NewSorted()) }
