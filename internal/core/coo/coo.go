// Package coo implements the coordinate-list (COO) organization of
// §II-A, the paper's baseline. The input is assumed to be an unsorted 1D
// coordinate vector, so building is a straight serialization — O(1)
// beyond the copy — and reading scans the whole list per probe,
// O(n · n_read) overall.
//
// The package also provides the sorted variant whose trade-off the paper
// discusses (O(n log n) build buys O(log n) probes); it is used by the
// sorted-COO ablation benchmark.
package coo

import (
	"fmt"

	"sparseart/internal/buf"
	"sparseart/internal/core"
	"sparseart/internal/obs"
	"sparseart/internal/psort"
	"sparseart/internal/tensor"
)

const magic = 0x314f4f43 // "COO1"

// Format is the COO organization. The zero value is the paper's
// unsorted baseline; set Sorted for the sorted variant.
type Format struct {
	Sorted bool
	Opts   core.Options
}

// New returns the unsorted baseline with the paper's serial options.
func New() Format { return Format{} }

// NewSorted returns the sorted variant.
func NewSorted() Format { return Format{Sorted: true} }

func init() {
	core.Register(New())
	core.Register(NewSorted())
}

// Kind implements core.Format.
func (f Format) Kind() core.Kind {
	if f.Sorted {
		return core.COOSorted
	}
	return core.COO
}

// WithOptions implements core.OptionSetter.
func (f Format) WithOptions(o core.Options) core.Format {
	f.Opts = o
	return f
}

// lexLess compares points a and b of c lexicographically, which for
// coordinates inside a fixed shape coincides with row-major linear
// address order.
func lexLess(c *tensor.Coords, a, b int) bool {
	pa, pb := c.At(a), c.At(b)
	for d := range pa {
		if pa[d] != pb[d] {
			return pa[d] < pb[d]
		}
	}
	return a < b
}

// Build implements core.Format. For the unsorted baseline the payload is
// the input buffer serialized as-is and the permutation is identity
// (nil). The sorted variant sorts by linear-address order and returns
// the sort map.
func (f Format) Build(c *tensor.Coords, shape tensor.Shape) (*core.BuildResult, error) {
	defer obs.Time("core.build", "kind", f.Kind().String())()
	obs.Count("core.build.points", int64(c.Len()), "kind", f.Kind().String())
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	if c.Dims() != shape.Dims() {
		return nil, fmt.Errorf("coo: %d-dim coords for %d-dim shape", c.Dims(), shape.Dims())
	}
	n := c.Len()
	w := buf.NewWriter(16 + 8*len(c.Flat()))
	w.U32(magic)
	w.U16(uint16(c.Dims()))
	if f.Sorted {
		w.U8(1)
	} else {
		w.U8(0)
	}
	w.U8(0) // reserved
	w.U64(uint64(n))

	if !f.Sorted {
		w.RawU64s(c.Flat())
		return &core.BuildResult{Payload: w.Bytes()}, nil
	}

	order := psort.SortPerm(n, f.Opts.Parallelism, func(i, j int) bool { return lexLess(c, i, j) })
	for _, i := range order {
		w.RawU64s(c.At(i))
	}
	return &core.BuildResult{Payload: w.Bytes(), Perm: tensor.InvertPerm(order)}, nil
}

// Open implements core.Format.
func (f Format) Open(payload []byte, shape tensor.Shape) (core.Reader, error) {
	r := buf.NewReader(payload)
	r.Expect(magic, "COO payload")
	dims := int(r.U16())
	sorted := r.U8() == 1
	r.U8()
	n := r.U64()
	flat := r.RawU64s(n * uint64(dims))
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("coo: %w", err)
	}
	if dims != shape.Dims() {
		return nil, fmt.Errorf("coo: payload has %d dims, shape has %d", dims, shape.Dims())
	}
	if sorted != f.Sorted {
		return nil, fmt.Errorf("coo: payload sorted=%v opened as sorted=%v", sorted, f.Sorted)
	}
	coords, err := tensor.FromFlat(dims, flat)
	if err != nil {
		return nil, fmt.Errorf("coo: %w", err)
	}
	return &reader{
		coords: coords, sorted: sorted,
		probes: obs.NewSampled(obs.Global().Counter("core.probe", "kind", f.Kind().String()), obs.DefaultSamplePeriod),
	}, nil
}

type reader struct {
	coords *tensor.Coords
	sorted bool
	// probes counts Lookup calls, sampled: the shared core.probe
	// counter is touched once per flush period, not per point.
	probes *obs.SampledCounter
}

// NNZ implements core.Reader.
func (r *reader) NNZ() int { return r.coords.Len() }

// IndexWords implements core.PayloadSizer: COO stores d words per point,
// the O(n·d) of Table I.
func (r *reader) IndexWords() int { return len(r.coords.Flat()) }

// Lookup implements core.Reader. The unsorted baseline scans every
// stored point (the O(n) per-probe cost of Table I); the sorted variant
// binary-searches.
func (r *reader) Lookup(p []uint64) (int, bool) {
	r.probes.Inc()
	if len(p) != r.coords.Dims() {
		return 0, false
	}
	if r.sorted {
		return r.lookupSorted(p)
	}
	n := r.coords.Len()
scan:
	for i := 0; i < n; i++ {
		q := r.coords.At(i)
		for d := range p {
			if q[d] != p[d] {
				continue scan
			}
		}
		return i, true
	}
	return 0, false
}

func cmpPoint(a, b []uint64) int {
	for d := range a {
		if a[d] != b[d] {
			if a[d] < b[d] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Each implements core.Iterator, visiting points in payload order. The
// point slice is reused; callbacks must not retain it.
func (r *reader) Each(visit func(p []uint64, slot int) bool) {
	for i, n := 0, r.coords.Len(); i < n; i++ {
		if !visit(r.coords.At(i), i) {
			return
		}
	}
}

// Points implements core.Streamer: the same walk as Each, as a lazy
// range-over-func sequence. The point slice is reused between yields.
func (r *reader) Points() core.PointSeq {
	return func(yield func(p []uint64, slot int) bool) {
		for i, n := 0, r.coords.Len(); i < n; i++ {
			if !yield(r.coords.At(i), i) {
				return
			}
		}
	}
}

func (r *reader) lookupSorted(p []uint64) (int, bool) {
	lo, hi := 0, r.coords.Len()
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		switch cmpPoint(r.coords.At(mid), p) {
		case -1:
			lo = mid + 1
		case 1:
			hi = mid
		default:
			return mid, true
		}
	}
	return 0, false
}

var (
	_ core.Format       = Format{}
	_ core.Reader       = (*reader)(nil)
	_ core.PayloadSizer = (*reader)(nil)
	_ core.Iterator     = (*reader)(nil)
	_ core.Streamer     = (*reader)(nil)
)
