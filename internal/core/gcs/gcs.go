// Package gcs implements the Generalized Compressed Sparse Row and
// Column organizations, GCSR++ and GCSC++ (§II-C/D, Algorithm 1). A
// high-dimensional tensor is remapped onto a 2D matrix whose compressed
// axis is the tensor's smallest dimension extent; the points are then
// packaged with the classic CSR/CSC scheme (row/column pointer vector
// plus minor-coordinate vector).
//
// Both orientations share one engine, differing only in which axis is
// compressed and which 2D order the points are sorted into. Because the
// remap goes through the row-major linear address, sorting GCSR++ keys
// on row-major-ordered input is nearly a no-op while GCSC++ must fully
// reshuffle — exactly the input-layout penalty the paper's Table III
// highlights.
package gcs

import (
	"fmt"

	"sparseart/internal/buf"
	"sparseart/internal/core"
	"sparseart/internal/obs"
	"sparseart/internal/psort"
	"sparseart/internal/tensor"
)

const magic = 0x31534347 // "GCS1"

// Orientation selects the compressed axis.
type Orientation uint8

const (
	// Row compresses rows: GCSR++.
	Row Orientation = 0
	// Col compresses columns: GCSC++.
	Col Orientation = 1
)

// Format is the GCSR++/GCSC++ organization.
type Format struct {
	Orient Orientation
	Opts   core.Options
}

// NewRow returns GCSR++ with the paper's serial options.
func NewRow() Format { return Format{Orient: Row} }

// NewCol returns GCSC++.
func NewCol() Format { return Format{Orient: Col} }

func init() {
	core.Register(NewRow())
	core.Register(NewCol())
}

// Kind implements core.Format.
func (f Format) Kind() core.Kind {
	if f.Orient == Col {
		return core.GCSC
	}
	return core.GCSR
}

// WithOptions implements core.OptionSetter.
func (f Format) WithOptions(o core.Options) core.Format {
	f.Opts = o
	return f
}

// geometry computes the 2D remap: the smallest extent of the shape
// becomes the compressed (major) axis, and the product of the remaining
// extents the minor axis, per Algorithm 1 line 6.
func geometry(shape tensor.Shape, orient Orientation) (rows, cols uint64, err error) {
	vol, ok := shape.Volume()
	if !ok {
		return 0, 0, fmt.Errorf("gcs: %w: shape %v", tensor.ErrOverflow, shape)
	}
	minExt, _ := shape.MinExtent()
	if orient == Row {
		return minExt, vol / minExt, nil
	}
	return vol / minExt, minExt, nil
}

// to2D converts a row-major linear address into 2D coordinates of the
// (rows × cols) matrix — the reverse row-major transform of Algorithm 1
// line 9.
func to2D(l, cols uint64) (r, c uint64) { return l / cols, l % cols }

// Build implements core.Format following GCSR++_BUILD: transform each
// point to its 2D coordinates, sort by the compressed axis, and package
// with CSR/CSC.
func (f Format) Build(c *tensor.Coords, shape tensor.Shape) (*core.BuildResult, error) {
	defer obs.Time("core.build", "kind", f.Kind().String())()
	obs.Count("core.build.points", int64(c.Len()), "kind", f.Kind().String())
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	if c.Dims() != shape.Dims() {
		return nil, fmt.Errorf("gcs: %d-dim coords for %d-dim shape", c.Dims(), shape.Dims())
	}
	rows, cols, err := geometry(shape, f.Orient)
	if err != nil {
		return nil, err
	}
	lin, err := tensor.NewLinearizer(shape, tensor.RowMajor)
	if err != nil {
		return nil, fmt.Errorf("gcs: %w", err)
	}
	n := c.Len()

	// Transform pass (one of the two O(n) passes in Table I's build
	// term): compute each point's 2D coordinates, held as a single
	// sort key in major-then-minor order.
	major := make([]uint64, n) // compressed-axis coordinate
	minor := make([]uint64, n)
	keys := make([]uint64, n)
	var majorExt, minorExt uint64
	if f.Orient == Row {
		majorExt, minorExt = rows, cols
	} else {
		majorExt, minorExt = cols, rows
	}
	for i := 0; i < n; i++ {
		p := c.At(i)
		if !shape.Contains(p) {
			return nil, fmt.Errorf("gcs: point %v outside shape %v", p, shape)
		}
		l := lin.Linearize(p)
		r2, c2 := to2D(l, cols)
		if f.Orient == Row {
			major[i], minor[i] = r2, c2
		} else {
			major[i], minor[i] = c2, r2
		}
		keys[i] = major[i]*minorExt + minor[i]
	}

	// Sort by the compressed axis (Algorithm 1 line 12).
	order := psort.SortPermByKey(n, f.Opts.Parallelism, func(i int) uint64 { return keys[i] })

	// Package with CSR/CSC (line 13): ptr has one entry per major
	// index plus the trailing sentinel, ind holds the minor coordinate
	// of each point in sorted order.
	ptr := make([]uint64, majorExt+1)
	ind := make([]uint64, n)
	for slot, i := range order {
		ptr[major[i]+1]++
		ind[slot] = minor[i]
	}
	for r := uint64(1); r <= majorExt; r++ {
		ptr[r] += ptr[r-1]
	}

	w := buf.NewWriter(32 + 8*(len(ptr)+len(ind)+len(shape)))
	w.U32(magic)
	w.U8(uint8(f.Orient))
	w.U8(0) // reserved
	w.U16(uint16(shape.Dims()))
	w.RawU64s(shape)
	w.U64(rows)
	w.U64(cols)
	w.U64(uint64(n))
	w.RawU64s(ptr)
	w.RawU64s(ind)
	return &core.BuildResult{Payload: w.Bytes(), Perm: tensor.InvertPerm(order)}, nil
}

// Open implements core.Format.
func (f Format) Open(payload []byte, shape tensor.Shape) (core.Reader, error) {
	r := buf.NewReader(payload)
	r.Expect(magic, "GCS payload")
	orient := Orientation(r.U8())
	r.U8()
	dims := int(r.U16())
	stored := tensor.Shape(r.RawU64s(uint64(dims)))
	rows := r.U64()
	cols := r.U64()
	n := r.U64()
	majorExt := rows
	if orient == Col {
		majorExt = cols
	}
	ptr := r.RawU64s(majorExt + 1)
	ind := r.RawU64s(n)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("gcs: %w", err)
	}
	if orient != f.Orient {
		return nil, fmt.Errorf("gcs: payload orientation %d opened as %d", orient, f.Orient)
	}
	if !stored.Equal(shape) {
		return nil, fmt.Errorf("gcs: payload shape %v does not match %v", stored, shape)
	}
	wantRows, wantCols, err := geometry(shape, orient)
	if err != nil || wantRows != rows || wantCols != cols {
		return nil, fmt.Errorf("gcs: payload geometry %dx%d does not match shape %v", rows, cols, shape)
	}
	// Structural validation so corrupt payloads fail here instead of
	// panicking a reader.
	minorExt := cols
	if orient == Col {
		minorExt = rows
	}
	if ptr[0] != 0 || ptr[len(ptr)-1] != n {
		return nil, fmt.Errorf("gcs: corrupt pointer vector bounds")
	}
	for i := 1; i < len(ptr); i++ {
		if ptr[i] < ptr[i-1] || ptr[i] > n {
			return nil, fmt.Errorf("gcs: pointer vector not monotone at %d", i)
		}
	}
	for i, mn := range ind {
		if mn >= minorExt {
			return nil, fmt.Errorf("gcs: minor coordinate %d out of range at %d", mn, i)
		}
	}
	lin, err := tensor.NewLinearizer(shape, tensor.RowMajor)
	if err != nil {
		return nil, fmt.Errorf("gcs: %w", err)
	}
	return &reader{
		orient: orient, lin: lin, rows: rows, cols: cols, ptr: ptr, ind: ind,
		probes: obs.NewSampled(obs.Global().Counter("core.probe", "kind", f.Kind().String()), obs.DefaultSamplePeriod),
	}, nil
}

type reader struct {
	orient     Orientation
	lin        *tensor.Linearizer
	rows, cols uint64
	ptr        []uint64 // majorExt+1 offsets into ind
	ind        []uint64 // minor coordinate per point, sorted order
	// probes counts Lookup calls, sampled: the shared core.probe
	// counter is touched once per flush period, not per point.
	probes *obs.SampledCounter
}

// NNZ implements core.Reader.
func (r *reader) NNZ() int { return len(r.ind) }

// IndexWords implements core.PayloadSizer: n minor coordinates plus the
// pointer vector — the O(n + min{m_1..m_d}) of Table I.
func (r *reader) IndexWords() int { return len(r.ind) + len(r.ptr) }

// Lookup implements core.Reader following GCSR++_READ: convert the probe
// to 2D, then scan its compressed-axis slice of ind. The slice is sorted
// by minor coordinate, so the scan stops early once past the target,
// preserving the O(n / min{m}) average of Table I.
func (r *reader) Lookup(p []uint64) (int, bool) {
	r.probes.Inc()
	if !r.lin.Shape().Contains(p) {
		return 0, false
	}
	l := r.lin.Linearize(p)
	r2, c2 := to2D(l, r.cols)
	var mj, mn uint64
	if r.orient == Row {
		mj, mn = r2, c2
	} else {
		mj, mn = c2, r2
	}
	lo, hi := r.ptr[mj], r.ptr[mj+1]
	for i := lo; i < hi; i++ {
		if r.ind[i] == mn {
			return int(i), true
		}
		if r.ind[i] > mn {
			break
		}
	}
	return 0, false
}

// Each implements core.Iterator, visiting points in packed (sorted)
// order by walking the pointer vector. The point slice is reused;
// callbacks must not retain it.
func (r *reader) Each(visit func(p []uint64, slot int) bool) {
	p := make([]uint64, r.lin.Shape().Dims())
	majorExt := uint64(len(r.ptr)) - 1
	for mj := uint64(0); mj < majorExt; mj++ {
		for k := r.ptr[mj]; k < r.ptr[mj+1]; k++ {
			mn := r.ind[k]
			var r2, c2 uint64
			if r.orient == Row {
				r2, c2 = mj, mn
			} else {
				r2, c2 = mn, mj
			}
			r.lin.Delinearize(r2*r.cols+c2, p)
			if !visit(p, int(k)) {
				return
			}
		}
	}
}

// Points implements core.Streamer: the same pointer-vector walk as
// Each, as a lazy range-over-func sequence. The point slice is reused
// between yields.
func (r *reader) Points() core.PointSeq {
	return func(yield func(p []uint64, slot int) bool) {
		p := make([]uint64, r.lin.Shape().Dims())
		majorExt := uint64(len(r.ptr)) - 1
		for mj := uint64(0); mj < majorExt; mj++ {
			for k := r.ptr[mj]; k < r.ptr[mj+1]; k++ {
				mn := r.ind[k]
				var r2, c2 uint64
				if r.orient == Row {
					r2, c2 = mj, mn
				} else {
					r2, c2 = mn, mj
				}
				r.lin.Delinearize(r2*r.cols+c2, p)
				if !yield(p, int(k)) {
					return
				}
			}
		}
	}
}

// Geometry exposes the 2D remap for inspection tools and tests.
func (r *reader) Geometry() (rows, cols uint64) { return r.rows, r.cols }

// Ptr exposes the compressed-axis pointer vector (row_ptr / col_ptr).
func (r *reader) Ptr() []uint64 { return r.ptr }

// Ind exposes the minor-coordinate vector (col_ind / row_ind).
func (r *reader) Ind() []uint64 { return r.ind }

var (
	_ core.Format       = Format{}
	_ core.Reader       = (*reader)(nil)
	_ core.PayloadSizer = (*reader)(nil)
	_ core.Iterator     = (*reader)(nil)
	_ core.Streamer     = (*reader)(nil)
)
