package gcs

import (
	"testing"

	"sparseart/internal/core"
	"sparseart/internal/core/coretest"
	"sparseart/internal/tensor"
)

func TestConformanceGCSR(t *testing.T) {
	coretest.RunConformance(t, NewRow())
}

func TestConformanceGCSC(t *testing.T) {
	coretest.RunConformance(t, NewCol())
}

func TestKinds(t *testing.T) {
	if NewRow().Kind() != core.GCSR || NewCol().Kind() != core.GCSC {
		t.Fatal("kinds")
	}
}

func TestGeometrySelectsSmallestExtent(t *testing.T) {
	// §II-C: the smallest dimension becomes the compressed axis and
	// the product of the rest the other axis.
	cases := []struct {
		shape              tensor.Shape
		orient             Orientation
		wantRows, wantCols uint64
	}{
		{tensor.Shape{3, 3, 3}, Row, 3, 9},
		{tensor.Shape{3, 3, 3}, Col, 9, 3},
		{tensor.Shape{8, 2, 4}, Row, 2, 32},
		{tensor.Shape{8, 2, 4}, Col, 32, 2},
		{tensor.Shape{128, 128, 128, 128}, Row, 128, 128 * 128 * 128},
		{tensor.Shape{7}, Row, 7, 1},
		{tensor.Shape{7}, Col, 1, 7},
	}
	for _, tc := range cases {
		rows, cols, err := geometry(tc.shape, tc.orient)
		if err != nil {
			t.Fatalf("geometry(%v, %d): %v", tc.shape, tc.orient, err)
		}
		if rows != tc.wantRows || cols != tc.wantCols {
			t.Errorf("geometry(%v, %d) = %dx%d, want %dx%d",
				tc.shape, tc.orient, rows, cols, tc.wantRows, tc.wantCols)
		}
	}
}

func TestGeometryRejectsOverflow(t *testing.T) {
	if _, _, err := geometry(tensor.Shape{1 << 32, 1 << 33}, Row); err == nil {
		t.Fatal("overflowing shape accepted")
	}
}

// TestPaperExampleCSRStructure checks the CSR packaging of the Fig. 1
// tensor against hand-computed values. The five points linearize to
// 1,4,5,25,26; with rows=3, cols=9 the 2D coordinates are (0,1) (0,4)
// (0,5) (2,7) (2,8), giving row_ptr {0,3,3,5} and col_ind {1,4,5,7,8}.
// (The paper's own Fig. 1(b) prints row_ptr "0,3,5,5" and col_ind
// "0,3,4,6,7", which is inconsistent with its Fig. 1(a) linear
// addresses and its Algorithm 1; we follow the algorithm.)
func TestPaperExampleCSRStructure(t *testing.T) {
	shape, c := coretest.PaperExample()
	built, err := NewRow().Build(c, shape)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRow().Open(built.Payload, shape)
	if err != nil {
		t.Fatal(err)
	}
	rd := r.(*reader)
	wantPtr := []uint64{0, 3, 3, 5}
	for i, v := range wantPtr {
		if rd.ptr[i] != v {
			t.Fatalf("row_ptr = %v, want %v", rd.ptr, wantPtr)
		}
	}
	wantInd := []uint64{1, 4, 5, 7, 8}
	for i, v := range wantInd {
		if rd.ind[i] != v {
			t.Fatalf("col_ind = %v, want %v", rd.ind, wantInd)
		}
	}
}

// TestPaperExampleCSCStructure hand-computes the GCSC++ packaging of
// the same tensor: cols=3 (the minimum extent), rows=9; the 2D
// coordinates (r,c) are (0,1) (1,1) (1,2) (8,1) (8,2); sorted by
// column, col_ptr is {0,0,3,5} and row_ind {0,1,8,1,8}.
func TestPaperExampleCSCStructure(t *testing.T) {
	shape, c := coretest.PaperExample()
	built, err := NewCol().Build(c, shape)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewCol().Open(built.Payload, shape)
	if err != nil {
		t.Fatal(err)
	}
	rd := r.(*reader)
	wantPtr := []uint64{0, 0, 3, 5}
	for i, v := range wantPtr {
		if rd.ptr[i] != v {
			t.Fatalf("col_ptr = %v, want %v", rd.ptr, wantPtr)
		}
	}
	wantInd := []uint64{0, 1, 8, 1, 8}
	for i, v := range wantInd {
		if rd.ind[i] != v {
			t.Fatalf("row_ind = %v, want %v", rd.ind, wantInd)
		}
	}
}

func TestPermMatchesSortOrder(t *testing.T) {
	// Input points at rows 2, 0, 2, 1 (of a 4x4 2D tensor) must sort
	// to rows 0,1,2,2 with ties broken by input order.
	shape := tensor.Shape{4, 4}
	c := tensor.NewCoords(2, 0)
	c.Append(2, 3) // slot 2
	c.Append(0, 0) // slot 0
	c.Append(2, 1) // slot 3... no: sorted by (row, col): (2,1) before (2,3)
	c.Append(1, 2) // slot 1
	built, err := NewRow().Build(c, shape)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 0, 2, 1}
	for i, p := range built.Perm {
		if p != want[i] {
			t.Fatalf("perm = %v, want %v", built.Perm, want)
		}
	}
}

func TestIndexWordsMatchesTableI(t *testing.T) {
	// Table I: GCS space is O(n + min extent) — n minor coordinates
	// plus (minExtent+1) pointers.
	shape, c := coretest.PaperExample()
	for _, f := range []Format{NewRow(), NewCol()} {
		built, err := f.Build(c, shape)
		if err != nil {
			t.Fatal(err)
		}
		r, err := f.Open(built.Payload, shape)
		if err != nil {
			t.Fatal(err)
		}
		minExt, _ := shape.MinExtent()
		want := c.Len() + int(minExt) + 1
		if w := r.(core.PayloadSizer).IndexWords(); w != want {
			t.Fatalf("orient %d: IndexWords = %d, want %d", f.Orient, w, want)
		}
	}
}

func TestRowAndColPayloadsAreNotInterchangeable(t *testing.T) {
	shape, c := coretest.PaperExample()
	row, err := NewRow().Build(c, shape)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCol().Open(row.Payload, shape); err == nil {
		t.Fatal("GCSC opened a GCSR payload")
	}
}

func TestOpenRejectsShapeMismatch(t *testing.T) {
	shape, c := coretest.PaperExample()
	built, err := NewRow().Build(c, shape)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRow().Open(built.Payload, tensor.Shape{3, 3, 4}); err == nil {
		t.Fatal("payload opened under different shape")
	}
}

func TestRejectsOutOfShapePoint(t *testing.T) {
	shape := tensor.Shape{4, 4}
	c := tensor.NewCoords(2, 1)
	c.Append(0, 9)
	if _, err := NewRow().Build(c, shape); err == nil {
		t.Fatal("out-of-shape point accepted")
	}
}

func TestAnisotropicMinExtentNotFirst(t *testing.T) {
	// When the smallest extent is an inner dimension the remap must
	// still resolve every point.
	shape := tensor.Shape{100, 2, 50}
	c := tensor.NewCoords(3, 0)
	c.Append(99, 1, 49)
	c.Append(0, 0, 0)
	c.Append(50, 1, 0)
	for _, f := range []Format{NewRow(), NewCol()} {
		built, err := f.Build(c, shape)
		if err != nil {
			t.Fatal(err)
		}
		r, err := f.Open(built.Payload, shape)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < c.Len(); i++ {
			if _, ok := r.Lookup(c.At(i)); !ok {
				t.Fatalf("orient %d: point %v lost", f.Orient, c.At(i))
			}
		}
	}
}

func FuzzOpenRow(f *testing.F) { coretest.FuzzOpen(f, NewRow()) }

func FuzzOpenCol(f *testing.F) { coretest.FuzzOpen(f, NewCol()) }
