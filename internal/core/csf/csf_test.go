package csf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sparseart/internal/core"
	"sparseart/internal/core/coretest"
	"sparseart/internal/tensor"
)

func TestConformanceLinearDescent(t *testing.T) {
	coretest.RunConformance(t, New())
}

func TestConformanceBinaryDescent(t *testing.T) {
	coretest.RunConformance(t, Format{BinarySearch: true})
}

func TestKind(t *testing.T) {
	if New().Kind() != core.CSF {
		t.Fatal("kind")
	}
}

func buildTree(t *testing.T, f Format, shape tensor.Shape, c *tensor.Coords) *Tree {
	t.Helper()
	built, err := f.Build(c, shape)
	if err != nil {
		t.Fatal(err)
	}
	r, err := f.Open(built.Payload, shape)
	if err != nil {
		t.Fatal(err)
	}
	return r.(*Tree)
}

// TestPaperFig1dStructure reproduces the worked example of §II-E: for
// the Fig. 1 tensor, nfibs = {2,3,5}, fids = {{0,2},{0,1,2},
// {1,1,2,1,2}}, and fptr = {{0,2,3},{0,1,3,5}}.
func TestPaperFig1dStructure(t *testing.T) {
	shape, c := coretest.PaperExample()
	tree := buildTree(t, New(), shape, c)

	wantNfibs := []uint64{2, 3, 5}
	for i, v := range wantNfibs {
		if tree.NFibs()[i] != v {
			t.Fatalf("nfibs = %v, want %v", tree.NFibs(), wantNfibs)
		}
	}
	wantFids := [][]uint64{{0, 2}, {0, 1, 2}, {1, 1, 2, 1, 2}}
	for lvl, want := range wantFids {
		got := tree.Fids()[lvl]
		if len(got) != len(want) {
			t.Fatalf("fids[%d] = %v, want %v", lvl, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("fids[%d] = %v, want %v", lvl, got, want)
			}
		}
	}
	wantFptr := [][]uint64{{0, 2, 3}, {0, 1, 3, 5}}
	for lvl, want := range wantFptr {
		got := tree.Fptr()[lvl]
		if len(got) != len(want) {
			t.Fatalf("fptr[%d] = %v, want %v", lvl, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("fptr[%d] = %v, want %v", lvl, got, want)
			}
		}
	}
}

func TestDimOrderAscendingExtents(t *testing.T) {
	// Algorithm 2 line 6: dimensions sorted ascending by extent,
	// stably.
	cases := []struct {
		shape tensor.Shape
		want  []int
	}{
		{tensor.Shape{3, 3, 3}, []int{0, 1, 2}},
		{tensor.Shape{9, 2, 5}, []int{1, 2, 0}},
		{tensor.Shape{4, 4, 1}, []int{2, 0, 1}},
	}
	for _, tc := range cases {
		got := dimOrder(tc.shape)
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Fatalf("dimOrder(%v) = %v, want %v", tc.shape, got, tc.want)
			}
		}
	}
}

func TestDimPermutationAppliedOnAnisotropicShape(t *testing.T) {
	// With extents (8, 2, 4), the root level must index the size-2
	// dimension, so nfibs[0] <= 2 regardless of the data.
	shape := tensor.Shape{8, 2, 4}
	rng := rand.New(rand.NewSource(3))
	c := tensor.NewCoords(3, 0)
	for i := 0; i < 30; i++ {
		c.Append(uint64(rng.Intn(8)), uint64(rng.Intn(2)), uint64(rng.Intn(4)))
	}
	tree := buildTree(t, New(), shape, c)
	if tree.NFibs()[0] > 2 {
		t.Fatalf("root level has %d nodes for a size-2 dimension", tree.NFibs()[0])
	}
	if got := tree.DimOrder(); got[0] != 1 {
		t.Fatalf("DimOrder = %v, want dimension 1 first", got)
	}
}

// checkInvariants verifies the structural invariants DESIGN.md lists
// for every CSF tree.
func checkInvariants(t *testing.T, tree *Tree, n int) {
	t.Helper()
	d := len(tree.DimOrder())
	if len(tree.NFibs()) != d || len(tree.Fids()) != d || len(tree.Fptr()) != d-1 {
		t.Fatal("level count mismatch")
	}
	for lvl := 0; lvl < d; lvl++ {
		if int(tree.NFibs()[lvl]) != len(tree.Fids()[lvl]) {
			t.Fatalf("level %d: nfibs %d != len(fids) %d", lvl, tree.NFibs()[lvl], len(tree.Fids()[lvl]))
		}
	}
	if tree.NNZ() != n {
		t.Fatalf("leaf count %d != %d points", tree.NNZ(), n)
	}
	for lvl := 0; lvl < d-1; lvl++ {
		ptr := tree.Fptr()[lvl]
		if len(ptr) != int(tree.NFibs()[lvl])+1 {
			t.Fatalf("fptr[%d] length %d, want %d", lvl, len(ptr), tree.NFibs()[lvl]+1)
		}
		if ptr[0] != 0 || ptr[len(ptr)-1] != tree.NFibs()[lvl+1] {
			t.Fatalf("fptr[%d] sentinels = %d..%d", lvl, ptr[0], ptr[len(ptr)-1])
		}
		for i := 1; i < len(ptr); i++ {
			if ptr[i] < ptr[i-1] {
				t.Fatalf("fptr[%d] not monotone at %d", lvl, i)
			}
			if ptr[i] == ptr[i-1] {
				t.Fatalf("fptr[%d]: node %d has no children", lvl, i-1)
			}
		}
		// Sibling coordinate runs must be strictly increasing.
		fids := tree.Fids()[lvl+1]
		for i := 0; i+1 < len(ptr); i++ {
			for j := ptr[i] + 1; j < ptr[i+1]; j++ {
				if fids[j] <= fids[j-1] {
					t.Fatalf("level %d siblings not strictly increasing", lvl+1)
				}
			}
		}
	}
}

func TestTreeInvariantsQuick(t *testing.T) {
	f := func(seed int64, n8 uint8, e0, e1, e2 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		shape := tensor.Shape{uint64(e0)%7 + 1, uint64(e1)%7 + 1, uint64(e2)%7 + 1}
		vol, _ := shape.Volume()
		n := int(uint64(n8) % (vol + 1))
		seen := map[uint64]bool{}
		lin, err := tensor.NewLinearizer(shape, tensor.RowMajor)
		if err != nil {
			return false
		}
		c := tensor.NewCoords(3, n)
		p := make([]uint64, 3)
		for len(seen) < n {
			a := uint64(rng.Int63n(int64(vol)))
			if seen[a] {
				continue
			}
			seen[a] = true
			lin.Delinearize(a, p)
			c.Append(p...)
		}
		built, err := New().Build(c, shape)
		if err != nil {
			return false
		}
		r, err := New().Open(built.Payload, shape)
		if err != nil {
			return false
		}
		checkInvariants(t, r.(*Tree), n)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestLinearAndBinaryDescentAgreeQuick: the ablation variant must give
// identical answers to the paper-faithful linear descent.
func TestLinearAndBinaryDescentAgreeQuick(t *testing.T) {
	shape := tensor.Shape{12, 12, 12}
	rng := rand.New(rand.NewSource(19))
	c := tensor.NewCoords(3, 0)
	for i := 0; i < 250; i++ {
		c.Append(uint64(rng.Intn(12)), uint64(rng.Intn(12)), uint64(rng.Intn(12)))
	}
	linTree := buildTree(t, New(), shape, c)
	binTree := buildTree(t, Format{BinarySearch: true}, shape, c)
	f := func(x, y, z uint8) bool {
		p := []uint64{uint64(x) % 12, uint64(y) % 12, uint64(z) % 12}
		s1, ok1 := linTree.Lookup(p)
		s2, ok2 := binTree.Lookup(p)
		return ok1 == ok2 && (!ok1 || s1 == s2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBestCaseCompaction(t *testing.T) {
	// A single fiber — all points share every prefix coordinate —
	// puts CSF at its best case O(n + d): one node per level except
	// the leaves.
	shape := tensor.Shape{16, 16, 16}
	c := tensor.NewCoords(3, 0)
	for z := uint64(0); z < 16; z++ {
		c.Append(7, 3, z)
	}
	tree := buildTree(t, New(), shape, c)
	if tree.NFibs()[0] != 1 || tree.NFibs()[1] != 1 || tree.NFibs()[2] != 16 {
		t.Fatalf("nfibs = %v, want {1,1,16}", tree.NFibs())
	}
	words := tree.IndexWords()
	if words > 16+2*3+3 { // leaves + two singleton levels + fptr sentinels + nfibs
		t.Fatalf("best case used %d words", words)
	}
}

func TestWorstCaseExpansion(t *testing.T) {
	// Points on the main diagonal share no prefixes: every level has n
	// nodes — the O(n*d) worst case.
	shape := tensor.Shape{16, 16, 16}
	c := tensor.NewCoords(3, 0)
	for i := uint64(0); i < 16; i++ {
		c.Append(i, i, i)
	}
	tree := buildTree(t, New(), shape, c)
	for lvl, n := range tree.NFibs() {
		if n != 16 {
			t.Fatalf("level %d has %d nodes, want 16", lvl, n)
		}
	}
}

func TestOpenRejectsShapeMismatch(t *testing.T) {
	shape, c := coretest.PaperExample()
	built, err := New().Build(c, shape)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New().Open(built.Payload, tensor.Shape{3, 3, 4}); err == nil {
		t.Fatal("payload opened under different shape")
	}
}

func TestRejectsOutOfShapePoint(t *testing.T) {
	shape := tensor.Shape{4, 4}
	c := tensor.NewCoords(2, 1)
	c.Append(0, 4)
	if _, err := New().Build(c, shape); err == nil {
		t.Fatal("out-of-shape point accepted")
	}
}

func FuzzOpen(f *testing.F) { coretest.FuzzOpen(f, New()) }
