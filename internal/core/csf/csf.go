// Package csf implements the Compressed Sparse Fiber organization
// (§II-E, Algorithm 2): a tree with one level per tensor dimension that
// deduplicates shared coordinate prefixes. Following CSF_BUILD, the
// dimensions are permuted into ascending-extent order — maximizing
// prefix sharing at the root and shrinking the upper levels — and the
// points are sorted lexicographically in that order before the three
// classic vectors are emitted:
//
//	nfibs[lvl]  node count at each level
//	fids[lvl]   the coordinate of every node at each level
//	fptr[lvl]   child offsets from level lvl into level lvl+1
//
// Reading (CSF_READ) descends from the root, binary-searching each
// level's sibling range, so a probe costs O(d · log fanout).
package csf

import (
	"fmt"
	"sort"

	"sparseart/internal/buf"
	"sparseart/internal/core"
	"sparseart/internal/obs"
	"sparseart/internal/psort"
	"sparseart/internal/tensor"
)

const magic = 0x31465343 // "CSF1"

// Format is the CSF organization.
type Format struct {
	Opts core.Options
	// BinarySearch descends the tree with per-level binary search
	// instead of the linear sibling scan of Algorithm 2 line 10
	// ("if p_coor[i] in fids[l:u]"). The paper-faithful default is the
	// linear scan — it is what makes the paper's CSF slower than
	// GCSR++/GCSC++ on 2D tensors (huge root fanout) yet faster on
	// 3D/4D (small per-level ranges); the binary variant is an
	// ablation.
	BinarySearch bool
}

// New returns the format with the paper's serial options.
func New() Format { return Format{} }

func init() { core.Register(New()) }

// Kind implements core.Format.
func (Format) Kind() core.Kind { return core.CSF }

// WithOptions implements core.OptionSetter.
func (f Format) WithOptions(o core.Options) core.Format {
	f.Opts = o
	return f
}

// dimOrder returns the permutation of dimensions by ascending extent
// (stable, so equal extents keep their original order), per Algorithm 2
// line 6.
func dimOrder(shape tensor.Shape) []int {
	perm := make([]int, len(shape))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return shape[perm[a]] < shape[perm[b]] })
	return perm
}

// Build implements core.Format following CSF_BUILD.
func (f Format) Build(c *tensor.Coords, shape tensor.Shape) (*core.BuildResult, error) {
	defer obs.Time("core.build", "kind", "CSF")()
	obs.Count("core.build.points", int64(c.Len()), "kind", "CSF")
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	d := shape.Dims()
	if c.Dims() != d {
		return nil, fmt.Errorf("csf: %d-dim coords for %d-dim shape", c.Dims(), d)
	}
	n := c.Len()
	for i := 0; i < n; i++ {
		if !shape.Contains(c.At(i)) {
			return nil, fmt.Errorf("csf: point %v outside shape %v", c.At(i), shape)
		}
	}
	dims := dimOrder(shape)

	// Sort points lexicographically in permuted-dimension order
	// (Algorithm 2 line 7).
	order := psort.SortPerm(n, f.Opts.Parallelism, func(i, j int) bool {
		pi, pj := c.At(i), c.At(j)
		for _, dim := range dims {
			if pi[dim] != pj[dim] {
				return pi[dim] < pj[dim]
			}
		}
		return i < j
	})

	// Emit the tree level by level in one pass over the sorted points:
	// a point opens a new node at every level at or below the first
	// level where its permuted prefix differs from its predecessor's.
	fids := make([][]uint64, d)
	fptr := make([][]uint64, d-1)
	for i := 0; i < n; i++ {
		p := c.At(order[i])
		diff := 0
		if i > 0 {
			prev := c.At(order[i-1])
			for diff < d-1 && p[dims[diff]] == prev[dims[diff]] {
				diff++
			}
		}
		for lvl := diff; lvl < d; lvl++ {
			if lvl < d-1 {
				fptr[lvl] = append(fptr[lvl], uint64(len(fids[lvl+1])))
			}
			fids[lvl] = append(fids[lvl], p[dims[lvl]])
		}
	}
	for lvl := 0; lvl < d-1; lvl++ {
		fptr[lvl] = append(fptr[lvl], uint64(len(fids[lvl+1]))) // sentinel
	}

	// Serialize (Algorithm 2 line 19: concatenate nfibs, fids, fptr).
	words := 8
	for lvl := 0; lvl < d; lvl++ {
		words += len(fids[lvl]) + 1
	}
	for lvl := 0; lvl < d-1; lvl++ {
		words += len(fptr[lvl])
	}
	w := buf.NewWriter(8 * words)
	w.U32(magic)
	w.U16(uint16(d))
	w.U16(0) // reserved
	w.RawU64s(shape)
	for _, dim := range dims {
		w.U64(uint64(dim))
	}
	for lvl := 0; lvl < d; lvl++ {
		w.U64(uint64(len(fids[lvl]))) // nfibs
	}
	for lvl := 0; lvl < d; lvl++ {
		w.RawU64s(fids[lvl])
	}
	for lvl := 0; lvl < d-1; lvl++ {
		w.RawU64s(fptr[lvl])
	}
	return &core.BuildResult{Payload: w.Bytes(), Perm: tensor.InvertPerm(order)}, nil
}

// Open implements core.Format.
func (f Format) Open(payload []byte, shape tensor.Shape) (core.Reader, error) {
	r := buf.NewReader(payload)
	r.Expect(magic, "CSF payload")
	d := int(r.U16())
	r.U16()
	stored := tensor.Shape(r.RawU64s(uint64(d)))
	dims := make([]int, d)
	for i := range dims {
		dims[i] = int(r.U64())
	}
	nfibs := r.RawU64s(uint64(d))
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("csf: %w", err)
	}
	if d < 1 {
		return nil, fmt.Errorf("csf: payload has no dimensions")
	}
	fids := make([][]uint64, d)
	for lvl := 0; lvl < d; lvl++ {
		fids[lvl] = r.RawU64s(nfibs[lvl])
	}
	fptr := make([][]uint64, d-1)
	for lvl := 0; lvl < d-1; lvl++ {
		fptr[lvl] = r.RawU64s(nfibs[lvl] + 1)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("csf: %w", err)
	}
	if !stored.Equal(shape) {
		return nil, fmt.Errorf("csf: payload shape %v does not match %v", stored, shape)
	}
	seen := make([]bool, d)
	for _, dim := range dims {
		if dim < 0 || dim >= d || seen[dim] {
			return nil, fmt.Errorf("csf: corrupt dimension permutation %v", dims)
		}
		seen[dim] = true
	}
	// Structural validation so corrupt payloads fail here instead of
	// panicking a descent or walk.
	for lvl := 0; lvl < d-1; lvl++ {
		ptr := fptr[lvl]
		if len(ptr) > 0 && (ptr[0] != 0 || ptr[len(ptr)-1] != nfibs[lvl+1]) {
			return nil, fmt.Errorf("csf: corrupt fptr bounds at level %d", lvl)
		}
		for i := 1; i < len(ptr); i++ {
			if ptr[i] < ptr[i-1] || ptr[i] > nfibs[lvl+1] {
				return nil, fmt.Errorf("csf: fptr not monotone at level %d", lvl)
			}
		}
	}
	for lvl := 0; lvl < d; lvl++ {
		ext := stored[dims[lvl]]
		for _, c := range fids[lvl] {
			if c >= ext {
				return nil, fmt.Errorf("csf: coordinate %d out of extent %d at level %d", c, ext, lvl)
			}
		}
	}
	return &Tree{
		shape: stored, dims: dims, nfibs: nfibs, fids: fids, fptr: fptr, binary: f.BinarySearch,
		probes: obs.NewSampled(obs.Global().Counter("core.probe", "kind", "CSF"), obs.DefaultSamplePeriod),
	}, nil
}

// Tree is the in-memory CSF tree; it implements core.Reader and exposes
// the structural vectors for inspection tools and the stencil example.
type Tree struct {
	shape  tensor.Shape
	dims   []int
	nfibs  []uint64
	fids   [][]uint64
	fptr   [][]uint64
	binary bool
	// probes counts Lookup calls, sampled: the shared core.probe
	// counter is touched once per flush period, not per point.
	probes *obs.SampledCounter
}

// NNZ implements core.Reader: the leaf level has one node per point.
func (t *Tree) NNZ() int {
	if len(t.fids) == 0 {
		return 0
	}
	return len(t.fids[len(t.fids)-1])
}

// IndexWords implements core.PayloadSizer: the sum of all level sizes —
// between O(n+d) and O(n·d) depending on prefix sharing, the variance
// the paper's Figure 4 discussion dwells on.
func (t *Tree) IndexWords() int {
	words := len(t.nfibs)
	for _, f := range t.fids {
		words += len(f)
	}
	for _, f := range t.fptr {
		words += len(f)
	}
	return words
}

// NFibs returns the node count per level.
func (t *Tree) NFibs() []uint64 { return t.nfibs }

// Fids returns the per-level node coordinates.
func (t *Tree) Fids() [][]uint64 { return t.fids }

// Fptr returns the per-level child offsets.
func (t *Tree) Fptr() [][]uint64 { return t.fptr }

// DimOrder returns the dimension permutation applied before sorting.
func (t *Tree) DimOrder() []int { return t.dims }

// searchBinary binary-searches v[lo:hi] (ascending) for the leftmost
// occurrence of x. Leftmost matters at the leaf level, where duplicate
// input coordinates produce equal adjacent leaves; returning the first
// keeps the binary and linear descents interchangeable.
func searchBinary(v []uint64, lo, hi uint64, x uint64) (uint64, bool) {
	end := hi
	for lo < hi {
		mid := (lo + hi) / 2
		if v[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < end && v[lo] == x {
		return lo, true
	}
	return 0, false
}

// searchLinear scans v[lo:hi] (ascending) for x with early exit, the
// literal membership test of Algorithm 2 line 10.
func searchLinear(v []uint64, lo, hi uint64, x uint64) (uint64, bool) {
	for i := lo; i < hi; i++ {
		if v[i] == x {
			return i, true
		}
		if v[i] > x {
			break
		}
	}
	return 0, false
}

// Lookup implements core.Reader following CSF_READ: descend level by
// level, narrowing the sibling range through fptr.
func (t *Tree) Lookup(p []uint64) (int, bool) {
	t.probes.Inc()
	d := len(t.dims)
	if len(p) != d || !t.shape.Contains(p) {
		return 0, false
	}
	search := searchLinear
	if t.binary {
		search = searchBinary
	}
	lo, hi := uint64(0), t.nfibs[0]
	var fi uint64
	for lvl := 0; lvl < d; lvl++ {
		var ok bool
		fi, ok = search(t.fids[lvl], lo, hi, p[t.dims[lvl]])
		if !ok {
			return 0, false
		}
		if lvl < d-1 {
			lo, hi = t.fptr[lvl][fi], t.fptr[lvl][fi+1]
		}
	}
	return int(fi), true
}

// Each implements core.Iterator with a depth-first walk, visiting the
// leaves in sorted (slot) order. The point slice is reused; callbacks
// must not retain it.
func (t *Tree) Each(visit func(p []uint64, slot int) bool) {
	d := len(t.dims)
	if d == 0 || t.NNZ() == 0 {
		return
	}
	p := make([]uint64, d)
	var walk func(lvl int, lo, hi uint64) bool
	walk = func(lvl int, lo, hi uint64) bool {
		for fi := lo; fi < hi; fi++ {
			p[t.dims[lvl]] = t.fids[lvl][fi]
			if lvl == d-1 {
				if !visit(p, int(fi)) {
					return false
				}
			} else if !walk(lvl+1, t.fptr[lvl][fi], t.fptr[lvl][fi+1]) {
				return false
			}
		}
		return true
	}
	walk(0, 0, t.nfibs[0])
}

// ScanRegion implements core.RegionScanner: the walk descends only
// subtrees whose coordinate lies inside the region's bounds for that
// level's dimension, pruning whole fibers — the structural advantage a
// tree index has for windowed reads.
func (t *Tree) ScanRegion(r tensor.Region, visit func(p []uint64, slot int) bool) {
	d := len(t.dims)
	if d == 0 || t.NNZ() == 0 || r.Dims() != d {
		return
	}
	p := make([]uint64, d)
	var walk func(lvl int, lo, hi uint64) bool
	walk = func(lvl int, lo, hi uint64) bool {
		dim := t.dims[lvl]
		min, max := r.Start[dim], r.Start[dim]+r.Size[dim]-1
		for fi := lo; fi < hi; fi++ {
			c := t.fids[lvl][fi]
			if c < min {
				continue
			}
			if c > max {
				break // siblings are sorted ascending
			}
			p[dim] = c
			if lvl == d-1 {
				if !visit(p, int(fi)) {
					return false
				}
			} else if !walk(lvl+1, t.fptr[lvl][fi], t.fptr[lvl][fi+1]) {
				return false
			}
		}
		return true
	}
	walk(0, 0, t.nfibs[0])
}

// Points implements core.Streamer: the same depth-first walk as Each,
// as a lazy range-over-func sequence. The point slice is reused between
// yields.
func (t *Tree) Points() core.PointSeq {
	return func(yield func(p []uint64, slot int) bool) {
		t.Each(yield)
	}
}

// RegionPoints implements core.RegionStreamer: the pruned descent of
// ScanRegion as a lazy sequence, skipping whole subtrees outside the
// region's per-dimension bounds.
func (t *Tree) RegionPoints(r tensor.Region) core.PointSeq {
	return func(yield func(p []uint64, slot int) bool) {
		t.ScanRegion(r, yield)
	}
}

var (
	_ core.Format         = Format{}
	_ core.Reader         = (*Tree)(nil)
	_ core.PayloadSizer   = (*Tree)(nil)
	_ core.Iterator       = (*Tree)(nil)
	_ core.RegionScanner  = (*Tree)(nil)
	_ core.Streamer       = (*Tree)(nil)
	_ core.RegionStreamer = (*Tree)(nil)
)
