package core

import (
	"strings"
	"testing"

	"sparseart/internal/tensor"
)

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		COO:       "COO",
		COOSorted: "COO-sorted",
		Linear:    "LINEAR",
		GCSR:      "GCSR++",
		GCSC:      "GCSC++",
		CSF:       "CSF",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
		if !k.Valid() {
			t.Errorf("%v not valid", k)
		}
	}
	if Kind(0).Valid() || Kind(99).Valid() {
		t.Error("invalid kinds reported valid")
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Errorf("unknown kind string: %q", Kind(99).String())
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{COO, COOSorted, Linear, GCSR, GCSC, CSF} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	for _, alias := range []string{"coo", "linear", "gcsr", "gcsc", "csf", "scoo"} {
		if _, err := ParseKind(alias); err != nil {
			t.Errorf("alias %q rejected: %v", alias, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestPaperKindsOrder(t *testing.T) {
	ks := PaperKinds()
	want := []Kind{COO, Linear, GCSR, GCSC, CSF}
	if len(ks) != len(want) {
		t.Fatalf("PaperKinds = %v", ks)
	}
	for i := range want {
		if ks[i] != want[i] {
			t.Fatalf("PaperKinds = %v, want %v", ks, want)
		}
	}
}

// fakeFormat is a registry test double.
type fakeFormat struct{ kind Kind }

func (f fakeFormat) Kind() Kind { return f.kind }
func (f fakeFormat) Build(*tensor.Coords, tensor.Shape) (*BuildResult, error) {
	return &BuildResult{}, nil
}
func (f fakeFormat) Open([]byte, tensor.Shape) (Reader, error) { return nil, nil }

func TestRegistry(t *testing.T) {
	// Use a kind number outside the real range so the test does not
	// disturb the global registry used elsewhere.
	const testKind = Kind(200)
	if _, err := Get(testKind); err == nil {
		t.Fatal("unregistered kind found")
	}
	Register(fakeFormat{kind: testKind})
	defer func() { // clean up the global registry
		regMu.Lock()
		delete(registry, testKind)
		regMu.Unlock()
	}()
	f, err := Get(testKind)
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind() != testKind {
		t.Fatalf("Get returned kind %v", f.Kind())
	}
	all := Registered()
	for i := 1; i < len(all); i++ {
		if all[i-1].Kind() >= all[i].Kind() {
			t.Fatal("Registered not sorted by kind")
		}
	}
}

type optFormat struct {
	fakeFormat
	opts Options
}

func (f optFormat) WithOptions(o Options) Format {
	f.opts = o
	return f
}

func TestConfigure(t *testing.T) {
	base := optFormat{fakeFormat: fakeFormat{kind: 201}}
	got := Configure(base, Options{Parallelism: 4})
	if got.(optFormat).opts.Parallelism != 4 {
		t.Fatal("Configure did not apply options")
	}
	// A format without the hook passes through unchanged.
	plain := fakeFormat{kind: 202}
	if Configure(plain, Options{Parallelism: 4}) != plain {
		t.Fatal("Configure changed a plain format")
	}
}
