// Package core defines the contracts shared by the five sparse-tensor
// storage organizations the paper studies — COO, LINEAR, GCSR++, GCSC++,
// and CSF — plus a registry the storage engine and benchmark harness use
// to iterate over them.
//
// A Format packages an unsorted coordinate buffer into an opaque payload
// (the organization's serialized index) and a permutation — the "map"
// vector of Algorithms 1 and 2 — that tells the caller where each input
// point's value lives in the packed order. A Reader answers point
// queries against a payload, returning the value slot, which indexes the
// value buffer after it has been reorganized by the same permutation.
package core

import (
	"fmt"
	"iter"
	"sort"
	"sync"

	"sparseart/internal/tensor"
)

// Kind identifies a storage organization. The zero value is invalid.
type Kind uint8

const (
	// COO is the coordinate-list baseline (§II-A), kept unsorted to
	// match the paper's analyzed variant.
	COO Kind = iota + 1
	// COOSorted is the sorted-coordinate variant whose trade-off §II-A
	// discusses but does not benchmark: O(n log n) build, O(log n)
	// probes.
	COOSorted
	// Linear stores row-major linear addresses (§II-B).
	Linear
	// GCSR is GCSR++ (§II-C, Algorithm 1).
	GCSR
	// GCSC is GCSC++ (§II-D).
	GCSC
	// CSF is the compressed-sparse-fiber tree (§II-E, Algorithm 2).
	CSF
	// BCOO is a HiCOO-style blocked coordinate format (§II-A mentions
	// HiCOO among the COO variants the paper's matrix excludes): points
	// are grouped into aligned blocks whose within-block offsets fit in
	// one byte per dimension. Implemented here as an extension for the
	// ablation study.
	BCOO
)

var kindNames = map[Kind]string{
	COO:       "COO",
	COOSorted: "COO-sorted",
	Linear:    "LINEAR",
	GCSR:      "GCSR++",
	GCSC:      "GCSC++",
	CSF:       "CSF",
	BCOO:      "BCOO",
}

// String returns the paper's name for the organization.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Valid reports whether k names a known organization.
func (k Kind) Valid() bool {
	_, ok := kindNames[k]
	return ok
}

// ParseKind resolves an organization name (case-sensitive, the String
// form or a few aliases) to its Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "COO", "coo":
		return COO, nil
	case "COO-sorted", "coo-sorted", "scoo":
		return COOSorted, nil
	case "LINEAR", "linear":
		return Linear, nil
	case "GCSR++", "GCSR", "gcsr":
		return GCSR, nil
	case "GCSC++", "GCSC", "gcsc":
		return GCSC, nil
	case "CSF", "csf":
		return CSF, nil
	case "BCOO", "bcoo", "hicoo":
		return BCOO, nil
	}
	return 0, fmt.Errorf("core: unknown organization %q", s)
}

// PaperKinds returns the five organizations of the paper's evaluation,
// in the column order of its tables: COO, LINEAR, GCSR++, GCSC++, CSF.
func PaperKinds() []Kind {
	return []Kind{COO, Linear, GCSR, GCSC, CSF}
}

// BuildResult is the output of packaging a coordinate buffer.
type BuildResult struct {
	// Payload is the serialized index, self-describing enough for the
	// same Format to Open it later.
	Payload []byte
	// Perm is the paper's "map" vector: Perm[i] is the slot of input
	// point i in the packed order. nil means identity (COO, LINEAR).
	Perm []int
}

// Format builds and opens one organization.
type Format interface {
	// Kind identifies the organization.
	Kind() Kind
	// Build packages the points of c, which must lie inside shape.
	// Implementations must not mutate c.
	Build(c *tensor.Coords, shape tensor.Shape) (*BuildResult, error)
	// Open parses a payload produced by Build for the same shape.
	Open(payload []byte, shape tensor.Shape) (Reader, error)
}

// Reader answers point-existence queries against a packed index,
// following the paper's READ algorithms (GCSR++_READ, CSF_READ, and the
// scan-based reads of COO and LINEAR).
type Reader interface {
	// NNZ returns the number of stored points.
	NNZ() int
	// Lookup returns the value slot holding point p, if present.
	Lookup(p []uint64) (slot int, ok bool)
}

// PayloadSizer is implemented by readers that can report the exact
// index footprint in units of the 8-byte index type, the quantity the
// paper's space-complexity analysis counts.
type PayloadSizer interface {
	IndexWords() int
}

// Iterator is implemented by every reader in this module: Each visits
// all stored points with their value slots. Visit order is
// implementation-defined (payload order); returning false stops the
// walk. The storage engine builds fragment compaction, organization
// conversion, and scan-mode region reads on top of it.
type Iterator interface {
	Each(visit func(p []uint64, slot int) bool)
}

// RegionScanner is an optional fast path: visit only the stored points
// inside a region, exploiting index structure to prune (e.g. the CSF
// tree descends only subtrees intersecting the region). Readers without
// it fall back to Each plus a containment filter.
type RegionScanner interface {
	ScanRegion(r tensor.Region, visit func(p []uint64, slot int) bool)
}

// PointSeq is the streaming iteration contract: a lazy walk over
// (coords, slot) pairs in the reader's payload order, consumable with a
// Go 1.23 range-over-func loop. The coordinate slice is reused between
// yields — consumers must copy it if they retain it past one step. A
// PointSeq decodes incrementally from the reader's in-memory index; it
// never materializes the point set as a COO buffer, which is what lets
// the storage engine run kernels and format conversions over stored
// fragments in O(fragment) rather than O(tensor) memory.
type PointSeq = iter.Seq2[[]uint64, int]

// Streamer is implemented by readers that expose their walk natively as
// a PointSeq. Every reader in this module implements it; the interface
// stays optional so external readers only need Iterator.
type Streamer interface {
	Points() PointSeq
}

// RegionStreamer is the region-restricted variant of Streamer: the walk
// visits only stored points inside the region, pruning via index
// structure where the organization allows it (CSF descends only
// intersecting subtrees).
type RegionStreamer interface {
	RegionPoints(r tensor.Region) PointSeq
}

// Points adapts any reader to the streaming contract: a native Streamer
// is used directly, otherwise the walk is bridged from Iterator. The
// second result is false when the reader supports neither (no way to
// enumerate its points).
func Points(r Reader) (PointSeq, bool) {
	switch rr := r.(type) {
	case Streamer:
		return rr.Points(), true
	case Iterator:
		return func(yield func([]uint64, int) bool) {
			rr.Each(yield)
		}, true
	}
	return nil, false
}

// RegionPoints adapts any reader to a region-restricted streaming walk:
// a native RegionStreamer prunes structurally, a RegionScanner is
// bridged, and any other iterable reader falls back to a full walk with
// a containment filter. The second result is false when the reader
// cannot enumerate points at all.
func RegionPoints(r Reader, region tensor.Region) (PointSeq, bool) {
	switch rr := r.(type) {
	case RegionStreamer:
		return rr.RegionPoints(region), true
	case RegionScanner:
		return func(yield func([]uint64, int) bool) {
			rr.ScanRegion(region, yield)
		}, true
	}
	seq, ok := Points(r)
	if !ok {
		return nil, false
	}
	return func(yield func([]uint64, int) bool) {
		for p, slot := range seq {
			if region.Contains(p) && !yield(p, slot) {
				return
			}
		}
	}, true
}

// Options tunes a build.
type Options struct {
	// Parallelism is the worker count for sort-dominated builds;
	// values < 1 mean all cores, 1 forces the serial path the paper's
	// single-process benchmark uses.
	Parallelism int
}

// Serial is the configuration matching the paper's measurements.
var Serial = Options{Parallelism: 1}

// OptionSetter is implemented by formats whose build can be tuned; it
// returns a copy of the format bound to the given options.
type OptionSetter interface {
	WithOptions(o Options) Format
}

// Configure returns f bound to options o when f supports it, or f
// unchanged otherwise.
func Configure(f Format, o Options) Format {
	if s, ok := f.(OptionSetter); ok {
		return s.WithOptions(o)
	}
	return f
}

var (
	regMu    sync.RWMutex
	registry = map[Kind]Format{}
)

// Register installs a format. Later registrations of the same Kind
// replace earlier ones; format subpackages call this from init.
func Register(f Format) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[f.Kind()] = f
}

// Get returns the registered format for k.
func Get(k Kind) (Format, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	f, ok := registry[k]
	if !ok {
		return nil, fmt.Errorf("core: organization %v not registered (import sparseart/internal/core/all)", k)
	}
	return f, nil
}

// Registered returns all registered formats in Kind order.
func Registered() []Format {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Format, 0, len(registry))
	for _, f := range registry {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind() < out[j].Kind() })
	return out
}
