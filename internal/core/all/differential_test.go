package all_test

import (
	"testing"

	"sparseart/internal/core"
	_ "sparseart/internal/core/all"
	"sparseart/internal/core/coretest"
)

// TestDifferentialAllKinds runs the randomized differential battery
// over every registered organization at once: the paper's five plus
// the sorted-COO and BCOO extensions. Running them simultaneously on
// the same datasets is what catches a format disagreeing with the
// others, not just with its own tests.
func TestDifferentialAllKinds(t *testing.T) {
	formats := core.Registered()
	if len(formats) < 6 {
		t.Fatalf("only %d organizations registered, want at least 6", len(formats))
	}
	coretest.RunDifferential(t, formats)
}

// TestStreamingAllKinds checks the streaming iteration contract of
// every registered organization: core.Points ≡ Each and
// core.RegionPoints ≡ Each + containment filter, step for step,
// including early termination and walk restartability.
func TestStreamingAllKinds(t *testing.T) {
	formats := core.Registered()
	if len(formats) < 6 {
		t.Fatalf("only %d organizations registered, want at least 6", len(formats))
	}
	coretest.RunStreaming(t, formats)
}
