// Package all registers every storage organization with the core
// registry. Importing it (usually blank) is how the storage engine,
// benchmark harness, and tools make all five of the paper's formats —
// plus the sorted-COO and HiCOO-style BCOO extensions — available
// through core.Get.
package all

import (
	_ "sparseart/internal/core/bcoo"
	_ "sparseart/internal/core/coo"
	_ "sparseart/internal/core/csf"
	_ "sparseart/internal/core/gcs"
	_ "sparseart/internal/core/linearfmt"
)
