package dataio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadText: arbitrary text must parse or be rejected without panic,
// and whatever parses must re-serialize and re-parse to the same
// tensor.
func FuzzReadText(f *testing.F) {
	f.Add("# shape: 4 4\n1 2 3.5\n")
	f.Add("# shape: 2\n0 1\n1 -2\n")
	f.Add("")
	f.Add("# shape: 18446744073709551615\n")
	f.Fuzz(func(t *testing.T, input string) {
		tn, err := ReadText(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, tn); err != nil {
			t.Fatalf("accepted tensor does not serialize: %v", err)
		}
		again, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("own output does not parse: %v", err)
		}
		if !again.Coords.Equal(tn.Coords) || !again.Shape.Equal(tn.Shape) {
			t.Fatal("text round trip mismatch")
		}
	})
}

// FuzzReadBinary: arbitrary bytes must never panic the binary reader.
func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, sample()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("SDT1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tn, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if tn.Coords.Len() != len(tn.Values) {
			t.Fatal("accepted inconsistent tensor")
		}
	})
}
