package dataio

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"sparseart/internal/tensor"
)

func sample() *Tensor {
	c := tensor.NewCoords(3, 0)
	c.Append(0, 0, 1)
	c.Append(2, 2, 2)
	return &Tensor{
		Shape:  tensor.Shape{3, 3, 3},
		Coords: c,
		Values: []float64{1.5, -2.25},
	}
}

func TestTextRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteText(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sample()
	if !got.Shape.Equal(want.Shape) || !got.Coords.Equal(want.Coords) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i := range want.Values {
		if got.Values[i] != want.Values[i] {
			t.Fatalf("values = %v", got.Values)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sample()
	if !got.Shape.Equal(want.Shape) || !got.Coords.Equal(want.Coords) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestReadTextTolerantFormat(t *testing.T) {
	in := `
# a comment
# shape: 4 4

1 2 3.5
0 0 -1
`
	got, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got.Coords.Len() != 2 || got.Values[0] != 3.5 || got.Values[1] != -1 {
		t.Fatalf("parsed %+v", got)
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := map[string]string{
		"no header":       "1 2 3\n",
		"bad extent":      "# shape: x 4\n",
		"bad coordinate":  "# shape: 4 4\na 1 2\n",
		"bad value":       "# shape: 4 4\n1 1 z\n",
		"field count":     "# shape: 4 4\n1 2 3 4\n",
		"missing header2": "# shape:\n1 2 3\n",
	}
	for name, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestReadTextEmptyDataset(t *testing.T) {
	got, err := ReadText(strings.NewReader("# shape: 5 5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Coords.Len() != 0 || !got.Shape.Equal(tensor.Shape{5, 5}) {
		t.Fatalf("empty dataset: %+v", got)
	}
}

func TestReadBinaryErrors(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("garbage accepted")
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(data[:len(data)-4])); err == nil {
		t.Error("truncated binary accepted")
	}
}

func TestWriteValidation(t *testing.T) {
	bad := sample()
	bad.Values = bad.Values[:1]
	var buf bytes.Buffer
	if err := WriteText(&buf, bad); err == nil {
		t.Error("value count mismatch accepted")
	}
	if err := WriteBinary(&buf, bad); err == nil {
		t.Error("value count mismatch accepted (binary)")
	}
	bad2 := sample()
	bad2.Shape = tensor.Shape{3}
	if err := WriteText(&buf, bad2); err == nil {
		t.Error("rank mismatch accepted")
	}
}

// TestRoundTripQuick property-tests both encodings on random tensors.
func TestRoundTripQuick(t *testing.T) {
	f := func(pts [][2]uint16, useBinary bool) bool {
		c := tensor.NewCoords(2, len(pts))
		vals := make([]float64, len(pts))
		for i, p := range pts {
			c.Append(uint64(p[0])%100, uint64(p[1])%100)
			vals[i] = float64(i) * 0.5
		}
		in := &Tensor{Shape: tensor.Shape{100, 100}, Coords: c, Values: vals}
		var buf bytes.Buffer
		var err error
		if useBinary {
			err = WriteBinary(&buf, in)
		} else {
			err = WriteText(&buf, in)
		}
		if err != nil {
			return false
		}
		var out *Tensor
		if useBinary {
			out, err = ReadBinary(&buf)
		} else {
			out, err = ReadText(&buf)
		}
		if err != nil {
			return false
		}
		if !out.Coords.Equal(in.Coords) || !out.Shape.Equal(in.Shape) {
			return false
		}
		for i := range vals {
			if out.Values[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
