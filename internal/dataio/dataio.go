// Package dataio reads and writes sparse-tensor datasets as standalone
// files, the interchange format between the sparsegen, sparseadvise,
// and example programs. Two encodings are supported: a line-oriented
// text form ("c1 c2 ... cd value" per point, '#' comments) compatible
// with common COO dumps, and a compact binary form.
package dataio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"sparseart/internal/buf"
	"sparseart/internal/tensor"
)

const binaryMagic = 0x31544453 // "SDT1"

// Tensor is a dataset: a shape, its points, and one value per point.
type Tensor struct {
	Shape  tensor.Shape
	Coords *tensor.Coords
	Values []float64
}

func (t *Tensor) validate() error {
	if err := t.Shape.Validate(); err != nil {
		return err
	}
	if t.Coords.Dims() != t.Shape.Dims() {
		return fmt.Errorf("dataio: %d-dim coords for %d-dim shape", t.Coords.Dims(), t.Shape.Dims())
	}
	if t.Coords.Len() != len(t.Values) {
		return fmt.Errorf("dataio: %d points with %d values", t.Coords.Len(), len(t.Values))
	}
	return nil
}

// WriteText writes the dataset in the line-oriented text form. The
// header line "# shape: m1 m2 ..." makes the file self-describing.
func WriteText(w io.Writer, t *Tensor) error {
	if err := t.validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# sparseart dataset: %d points\n", t.Coords.Len())
	fmt.Fprint(bw, "# shape:")
	for _, m := range t.Shape {
		fmt.Fprintf(bw, " %d", m)
	}
	fmt.Fprintln(bw)
	for i, n := 0, t.Coords.Len(); i < n; i++ {
		for _, c := range t.Coords.At(i) {
			fmt.Fprintf(bw, "%d ", c)
		}
		fmt.Fprintf(bw, "%g\n", t.Values[i])
	}
	return bw.Flush()
}

// ReadText parses the text form. A "# shape:" header is required so the
// tensor extent does not have to be guessed from the data.
func ReadText(r io.Reader) (*Tensor, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var shape tensor.Shape
	var coords *tensor.Coords
	var values []float64
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if rest, ok := strings.CutPrefix(line, "# shape:"); ok {
				for _, f := range strings.Fields(rest) {
					m, err := strconv.ParseUint(f, 10, 64)
					if err != nil {
						return nil, fmt.Errorf("dataio: line %d: bad shape extent %q", lineNo, f)
					}
					shape = append(shape, m)
				}
			}
			continue
		}
		if shape == nil {
			return nil, fmt.Errorf("dataio: line %d: data before '# shape:' header", lineNo)
		}
		fields := strings.Fields(line)
		if len(fields) != len(shape)+1 {
			return nil, fmt.Errorf("dataio: line %d: want %d coordinates + value, got %d fields",
				lineNo, len(shape), len(fields))
		}
		if coords == nil {
			coords = tensor.NewCoords(len(shape), 0)
		}
		p := make([]uint64, len(shape))
		for i := 0; i < len(shape); i++ {
			c, err := strconv.ParseUint(fields[i], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("dataio: line %d: bad coordinate %q", lineNo, fields[i])
			}
			p[i] = c
		}
		v, err := strconv.ParseFloat(fields[len(shape)], 64)
		if err != nil {
			return nil, fmt.Errorf("dataio: line %d: bad value %q", lineNo, fields[len(shape)])
		}
		coords.Append(p...)
		values = append(values, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if shape == nil {
		return nil, fmt.Errorf("dataio: missing '# shape:' header")
	}
	if coords == nil {
		coords = tensor.NewCoords(len(shape), 0)
	}
	t := &Tensor{Shape: shape, Coords: coords, Values: values}
	return t, t.validate()
}

// WriteBinary writes the compact binary form.
func WriteBinary(w io.Writer, t *Tensor) error {
	if err := t.validate(); err != nil {
		return err
	}
	bw := buf.NewWriter(32 + 8*(len(t.Shape)+len(t.Coords.Flat())+len(t.Values)))
	bw.U32(binaryMagic)
	bw.U16(uint16(t.Shape.Dims()))
	bw.U16(0)
	bw.RawU64s(t.Shape)
	bw.U64(uint64(t.Coords.Len()))
	bw.RawU64s(t.Coords.Flat())
	bw.F64s(t.Values)
	_, err := w.Write(bw.Bytes())
	return err
}

// ReadBinary parses the binary form.
func ReadBinary(r io.Reader) (*Tensor, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	br := buf.NewReader(data)
	br.Expect(binaryMagic, "dataset")
	dims := int(br.U16())
	br.U16()
	shape := tensor.Shape(br.RawU64s(uint64(dims)))
	n := br.U64()
	flat := br.RawU64s(n * uint64(dims))
	values := br.F64s()
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("dataio: %w", err)
	}
	coords, err := tensor.FromFlat(dims, flat)
	if err != nil {
		return nil, err
	}
	t := &Tensor{Shape: shape, Coords: coords, Values: values}
	return t, t.validate()
}
