package dataio

import (
	"bytes"
	"strings"
	"testing"
)

const mmGeneral = `%%MatrixMarket matrix coordinate real general
% a comment
3 4 3
1 1 2.5
3 4 -1
2 2 7
`

func TestReadMatrixMarketGeneral(t *testing.T) {
	got, err := ReadMatrixMarket(strings.NewReader(mmGeneral))
	if err != nil {
		t.Fatal(err)
	}
	if got.Shape[0] != 3 || got.Shape[1] != 4 {
		t.Fatalf("shape %v", got.Shape)
	}
	if got.Coords.Len() != 3 {
		t.Fatalf("%d points", got.Coords.Len())
	}
	// 1-based (1,1) becomes 0-based (0,0).
	if p := got.Coords.At(0); p[0] != 0 || p[1] != 0 || got.Values[0] != 2.5 {
		t.Fatalf("first entry %v %v", p, got.Values[0])
	}
	if p := got.Coords.At(1); p[0] != 2 || p[1] != 3 || got.Values[1] != -1 {
		t.Fatalf("second entry %v %v", p, got.Values[1])
	}
}

func TestReadMatrixMarketSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
3 3 2
2 1 5
2 2 9
`
	got, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// (2,1) expands to (1,2); the diagonal does not.
	if got.Coords.Len() != 3 {
		t.Fatalf("%d points after expansion", got.Coords.Len())
	}
	found := map[[2]uint64]float64{}
	for i := 0; i < got.Coords.Len(); i++ {
		p := got.Coords.At(i)
		found[[2]uint64{p[0], p[1]}] = got.Values[i]
	}
	if found[[2]uint64{1, 0}] != 5 || found[[2]uint64{0, 1}] != 5 || found[[2]uint64{1, 1}] != 9 {
		t.Fatalf("expanded entries %v", found)
	}
}

func TestReadMatrixMarketSkewSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real skew-symmetric
3 3 1
3 1 4
`
	got, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	found := map[[2]uint64]float64{}
	for i := 0; i < got.Coords.Len(); i++ {
		p := got.Coords.At(i)
		found[[2]uint64{p[0], p[1]}] = got.Values[i]
	}
	if found[[2]uint64{2, 0}] != 4 || found[[2]uint64{0, 2}] != -4 {
		t.Fatalf("skew expansion %v", found)
	}
}

func TestReadMatrixMarketPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
2 2 2
1 2
2 1
`
	got, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got.Values[0] != 1 || got.Values[1] != 1 {
		t.Fatalf("pattern values %v", got.Values)
	}
}

func TestReadMatrixMarketErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"bad header":     "%%NotMatrixMarket matrix coordinate real general\n1 1 0\n",
		"dense":          "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",
		"bad field":      "%%MatrixMarket matrix coordinate complex general\n1 1 0\n",
		"bad symmetry":   "%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n",
		"no size":        "%%MatrixMarket matrix coordinate real general\n",
		"bad size":       "%%MatrixMarket matrix coordinate real general\n2 2\n",
		"row overflow":   "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n",
		"col overflow":   "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 3 1\n",
		"zero index":     "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1\n",
		"bad value":      "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 x\n",
		"count mismatch": "%%MatrixMarket matrix coordinate real general\n2 2 5\n1 1 1\n",
		"zero extent":    "%%MatrixMarket matrix coordinate real general\n0 2 0\n",
	}
	for name, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	got, err := ReadMatrixMarket(strings.NewReader(mmGeneral))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, got); err != nil {
		t.Fatal(err)
	}
	again, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Coords.Equal(got.Coords) || !again.Shape.Equal(got.Shape) {
		t.Fatal("round trip mismatch")
	}
	for i := range got.Values {
		if again.Values[i] != got.Values[i] {
			t.Fatal("values mismatch")
		}
	}
}

func TestWriteMatrixMarketRejectsNon2D(t *testing.T) {
	bad := sample() // 3D
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, bad); err == nil {
		t.Fatal("3D tensor accepted")
	}
}

// FuzzReadMatrixMarket: arbitrary text must never panic the parser.
func FuzzReadMatrixMarket(f *testing.F) {
	f.Add(mmGeneral)
	f.Add("%%MatrixMarket matrix coordinate pattern symmetric\n2 2 1\n2 1\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		tn, err := ReadMatrixMarket(strings.NewReader(input))
		if err != nil {
			return
		}
		if tn.Coords.Len() != len(tn.Values) {
			t.Fatal("accepted inconsistent tensor")
		}
	})
}
