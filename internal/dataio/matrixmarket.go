package dataio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"sparseart/internal/tensor"
)

// This file reads and writes the Matrix Market coordinate format, the
// interchange format of the SuiteSparse collection the paper draws its
// dataset survey from (§III, [25]). Supported: `matrix coordinate` with
// real/integer/pattern fields and general/symmetric/skew-symmetric
// symmetry; 1-based indices per the specification.

// ReadMatrixMarket parses a Matrix Market coordinate file into a 2D
// tensor. Symmetric and skew-symmetric inputs are expanded to their
// full (general) point sets.
func ReadMatrixMarket(r io.Reader) (*Tensor, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	if !sc.Scan() {
		return nil, fmt.Errorf("dataio: empty Matrix Market input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) != 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("dataio: bad Matrix Market header %q", sc.Text())
	}
	if header[2] != "coordinate" {
		return nil, fmt.Errorf("dataio: only coordinate (sparse) matrices are supported, got %q", header[2])
	}
	field, symmetry := header[3], header[4]
	switch field {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("dataio: unsupported field type %q", field)
	}
	switch symmetry {
	case "general", "symmetric", "skew-symmetric":
	default:
		return nil, fmt.Errorf("dataio: unsupported symmetry %q", symmetry)
	}

	// Size line (after comments).
	var rows, cols, nnz uint64
	for {
		if !sc.Scan() {
			return nil, fmt.Errorf("dataio: missing size line")
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("dataio: bad size line %q", line)
		}
		var err error
		if rows, err = strconv.ParseUint(fields[0], 10, 64); err != nil {
			return nil, fmt.Errorf("dataio: bad row count %q", fields[0])
		}
		if cols, err = strconv.ParseUint(fields[1], 10, 64); err != nil {
			return nil, fmt.Errorf("dataio: bad column count %q", fields[1])
		}
		if nnz, err = strconv.ParseUint(fields[2], 10, 64); err != nil {
			return nil, fmt.Errorf("dataio: bad entry count %q", fields[2])
		}
		break
	}
	shape := tensor.Shape{rows, cols}
	if err := shape.Validate(); err != nil {
		return nil, err
	}

	wantFields := 3
	if field == "pattern" {
		wantFields = 2
	}
	coords := tensor.NewCoords(2, int(nnz))
	var values []float64
	entries := uint64(0)
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != wantFields {
			return nil, fmt.Errorf("dataio: line %d: want %d fields, got %d", lineNo, wantFields, len(fields))
		}
		i, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil || i == 0 || i > rows {
			return nil, fmt.Errorf("dataio: line %d: bad row index %q", lineNo, fields[0])
		}
		j, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil || j == 0 || j > cols {
			return nil, fmt.Errorf("dataio: line %d: bad column index %q", lineNo, fields[1])
		}
		v := 1.0
		if field != "pattern" {
			if v, err = strconv.ParseFloat(fields[2], 64); err != nil {
				return nil, fmt.Errorf("dataio: line %d: bad value %q", lineNo, fields[2])
			}
		}
		coords.Append(i-1, j-1)
		values = append(values, v)
		if symmetry != "general" && i != j {
			coords.Append(j-1, i-1)
			if symmetry == "skew-symmetric" {
				values = append(values, -v)
			} else {
				values = append(values, v)
			}
		}
		entries++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if entries != nnz {
		return nil, fmt.Errorf("dataio: header declares %d entries, file has %d", nnz, entries)
	}
	t := &Tensor{Shape: shape, Coords: coords, Values: values}
	return t, t.validate()
}

// WriteMatrixMarket writes a 2D tensor in `matrix coordinate real
// general` form.
func WriteMatrixMarket(w io.Writer, t *Tensor) error {
	if err := t.validate(); err != nil {
		return err
	}
	if t.Shape.Dims() != 2 {
		return fmt.Errorf("dataio: Matrix Market holds 2D tensors, got %dD", t.Shape.Dims())
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "%%MatrixMarket matrix coordinate real general")
	fmt.Fprintln(bw, "% written by sparseart")
	fmt.Fprintf(bw, "%d %d %d\n", t.Shape[0], t.Shape[1], t.Coords.Len())
	for i, n := 0, t.Coords.Len(); i < n; i++ {
		p := t.Coords.At(i)
		fmt.Fprintf(bw, "%d %d %g\n", p[0]+1, p[1]+1, t.Values[i])
	}
	return bw.Flush()
}
