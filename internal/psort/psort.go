// Package psort provides the parallel primitives used on the build path
// of the storage organizations: a parallel-for over index ranges and a
// parallel merge sort that produces a permutation rather than moving the
// data. Sorting dominates the build cost of GCSR++/GCSC++/CSF (the
// n·log n term in Table I), so this is the module's main lever for
// exploiting the many cores of an HPC node.
package psort

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"sparseart/internal/obs"
)

// serialCutoff is the problem size below which parallelism is pure
// overhead.
const serialCutoff = 1 << 13

// Workers normalizes a worker-count request: values < 1 mean "use all
// available cores".
func Workers(requested int) int {
	if requested < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// ParallelFor runs fn over [0, n) split into contiguous chunks, one per
// worker, and waits for completion. With workers <= 1 (or a small n) it
// degrades to a direct call.
//
// When the process-wide obs registry is enabled, ParallelFor reports
// worker utilization: each worker's busy time feeds the
// "psort.worker.busy" histogram, and the serial-cutoff fallback is
// counted separately from genuinely parallel runs.
func ParallelFor(n, workers int, fn func(start, end int)) {
	reg := obs.Global()
	workers = Workers(workers)
	if workers == 1 || n < serialCutoff {
		if reg != nil {
			reg.Counter("psort.parfor.serial").Inc()
		}
		if n > 0 {
			fn(0, n)
		}
		return
	}
	if workers > n {
		workers = n
	}
	if reg != nil {
		reg.Counter("psort.parfor.parallel").Inc()
		reg.Gauge("psort.workers").Set(int64(workers))
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		start := w * n / workers
		end := (w + 1) * n / workers
		go func(s, e int) {
			defer wg.Done()
			if s >= e {
				return
			}
			if reg == nil {
				fn(s, e)
				return
			}
			t := time.Now()
			fn(s, e)
			reg.Histogram("psort.worker.busy").Observe(time.Since(t))
		}(start, end)
	}
	wg.Wait()
}

// SortPerm sorts the virtual sequence [0, n) under less and returns the
// resulting order: out[k] is the input index of the k-th smallest
// element. The input is never moved; callers turn the result into the
// paper's "map" vector by inverting it (map[input] = slot).
//
// For determinism under parallel execution, less must be a strict total
// order — break ties on the index itself.
func SortPerm(n int, workers int, less func(i, j int) bool) []int {
	defer obs.Time("psort.sort")()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	workers = Workers(workers)
	if workers == 1 || n < serialCutoff {
		obs.Count("psort.sort.serial", 1)
		sort.Slice(idx, func(a, b int) bool { return less(idx[a], idx[b]) })
		return idx
	}
	obs.Count("psort.sort.parallel", 1)

	// Chunk-sort in parallel, then merge pairs of runs in log rounds.
	chunks := workers
	if chunks > n {
		chunks = n
	}
	bounds := make([]int, chunks+1)
	for c := 0; c <= chunks; c++ {
		bounds[c] = c * n / chunks
	}
	ParallelFor(chunks, workers, func(cs, ce int) {
		for c := cs; c < ce; c++ {
			part := idx[bounds[c]:bounds[c+1]]
			sort.Slice(part, func(a, b int) bool { return less(part[a], part[b]) })
		}
	})

	tmp := make([]int, n)
	src, dst := idx, tmp
	for len(bounds) > 2 {
		newBounds := make([]int, 0, len(bounds)/2+1)
		newBounds = append(newBounds, 0)
		var wg sync.WaitGroup
		for b := 0; b+2 < len(bounds); b += 2 {
			lo, mid, hi := bounds[b], bounds[b+1], bounds[b+2]
			newBounds = append(newBounds, hi)
			wg.Add(1)
			go func(lo, mid, hi int) {
				defer wg.Done()
				merge(src, dst, lo, mid, hi, less)
			}(lo, mid, hi)
		}
		if len(bounds)%2 == 0 {
			// Odd run count: the trailing run is copied through as-is.
			lo, hi := bounds[len(bounds)-2], bounds[len(bounds)-1]
			copy(dst[lo:hi], src[lo:hi])
			newBounds = append(newBounds, hi)
		}
		wg.Wait()
		src, dst = dst, src
		bounds = newBounds
	}
	return src
}

// merge merges the sorted runs src[lo:mid] and src[mid:hi] into
// dst[lo:hi].
func merge(src, dst []int, lo, mid, hi int, less func(i, j int) bool) {
	i, j, k := lo, mid, lo
	for i < mid && j < hi {
		if less(src[j], src[i]) {
			dst[k] = src[j]
			j++
		} else {
			dst[k] = src[i]
			i++
		}
		k++
	}
	copy(dst[k:hi], src[i:mid])
	copy(dst[k+(mid-i):hi], src[j:hi])
}

// SortPermByKey sorts [0, n) by a uint64 key with index tie-breaking, the
// common case for the organizations (sort by row, by column, by linear
// address). It is deterministic regardless of worker count.
func SortPermByKey(n, workers int, key func(i int) uint64) []int {
	return SortPerm(n, workers, func(i, j int) bool {
		ki, kj := key(i), key(j)
		if ki != kj {
			return ki < kj
		}
		return i < j
	})
}
