package psort

import (
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestWorkers(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("Workers must normalize to >= 1")
	}
	if Workers(7) != 7 {
		t.Fatalf("Workers(7) = %d", Workers(7))
	}
}

func TestParallelForCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 1000} {
		for _, n := range []int{0, 1, 5, serialCutoff - 1, serialCutoff + 3} {
			hits := make([]int32, n)
			ParallelFor(n, workers, func(start, end int) {
				for i := start; i < end; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestParallelForChunksAreOrderedAndDisjoint(t *testing.T) {
	n := serialCutoff * 4
	var total int64
	ParallelFor(n, 7, func(start, end int) {
		if start >= end {
			t.Errorf("empty chunk [%d,%d)", start, end)
		}
		atomic.AddInt64(&total, int64(end-start))
	})
	if total != int64(n) {
		t.Fatalf("chunks cover %d of %d", total, n)
	}
}

func sortedByKey(keys []uint64, perm []int) bool {
	for i := 1; i < len(perm); i++ {
		ka, kb := keys[perm[i-1]], keys[perm[i]]
		if ka > kb {
			return false
		}
		if ka == kb && perm[i-1] > perm[i] {
			return false // tie-break by index must hold
		}
	}
	return true
}

func TestSortPermMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 100, serialCutoff + 500} {
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = uint64(rng.Intn(50)) // many duplicates
		}
		for _, workers := range []int{1, 2, 5, 16} {
			got := SortPermByKey(n, workers, func(i int) uint64 { return keys[i] })
			if len(got) != n {
				t.Fatalf("n=%d workers=%d: perm length %d", n, workers, len(got))
			}
			if !sortedByKey(keys, got) {
				t.Fatalf("n=%d workers=%d: not sorted", n, workers)
			}
			seen := make([]bool, n)
			for _, idx := range got {
				if idx < 0 || idx >= n || seen[idx] {
					t.Fatalf("n=%d workers=%d: invalid permutation", n, workers)
				}
				seen[idx] = true
			}
		}
	}
}

func TestSortPermDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := serialCutoff * 3
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(rng.Intn(100))
	}
	ref := SortPermByKey(n, 1, func(i int) uint64 { return keys[i] })
	for _, workers := range []int{2, 3, 4, 9} {
		got := SortPermByKey(n, workers, func(i int) uint64 { return keys[i] })
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d differs from serial at %d", workers, i)
			}
		}
	}
}

func TestSortPermOddChunkCount(t *testing.T) {
	// Three workers exercise the odd-run copy-through path of the merge
	// rounds.
	n := serialCutoff * 3
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64((i * 7919) % 1000)
	}
	got := SortPerm(n, 3, func(i, j int) bool {
		if keys[i] != keys[j] {
			return keys[i] < keys[j]
		}
		return i < j
	})
	if !sortedByKey(keys, got) {
		t.Fatal("not sorted with 3 workers")
	}
}

func TestSortPermAlreadySorted(t *testing.T) {
	n := serialCutoff * 2
	got := SortPermByKey(n, 4, func(i int) uint64 { return uint64(i) })
	for i, idx := range got {
		if idx != i {
			t.Fatalf("sorted input should give identity, got[%d]=%d", i, idx)
		}
	}
}

// TestSortPermQuick property-tests agreement with sort.SliceStable on
// random inputs across worker counts.
func TestSortPermQuick(t *testing.T) {
	f := func(seed int64, wsel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(3000)
		workers := int(wsel)%8 + 1
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = uint64(rng.Intn(20))
		}
		got := SortPermByKey(n, workers, func(i int) uint64 { return keys[i] })
		want := make([]int, n)
		for i := range want {
			want[i] = i
		}
		sort.SliceStable(want, func(a, b int) bool { return keys[want[a]] < keys[want[b]] })
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
