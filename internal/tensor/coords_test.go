package tensor

import (
	"testing"
	"testing/quick"
)

func TestCoordsBasics(t *testing.T) {
	c := NewCoords(3, 2)
	if c.Len() != 0 || c.Dims() != 3 {
		t.Fatalf("fresh buffer: len=%d dims=%d", c.Len(), c.Dims())
	}
	c.Append(1, 2, 3)
	c.Append(4, 5, 6)
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	if p := c.At(1); p[0] != 4 || p[1] != 5 || p[2] != 6 {
		t.Fatalf("At(1) = %v", p)
	}
	if c.Get(0, 2) != 3 {
		t.Fatalf("Get(0,2) = %d", c.Get(0, 2))
	}
	// At returns a live view.
	c.At(0)[0] = 42
	if c.Get(0, 0) != 42 {
		t.Fatal("At view does not alias buffer")
	}
}

func TestCoordsAppendPanics(t *testing.T) {
	c := NewCoords(2, 0)
	mustPanic(t, func() { c.Append(1) })
	mustPanic(t, func() { c.Append(1, 2, 3) })
	mustPanic(t, func() { c.AppendFlat([]uint64{1, 2, 3}) })
	mustPanic(t, func() { NewCoords(0, 1) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestCoordsFromFlat(t *testing.T) {
	c, err := FromFlat(2, []uint64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 || c.Get(1, 0) != 3 {
		t.Fatalf("FromFlat: len=%d", c.Len())
	}
	if _, err := FromFlat(3, []uint64{1, 2, 3, 4}); err == nil {
		t.Fatal("want length mismatch error")
	}
	if _, err := FromFlat(0, nil); err == nil {
		t.Fatal("want dims error")
	}
}

func TestCoordsAppendFlatAndFlat(t *testing.T) {
	c := NewCoords(2, 0)
	c.AppendFlat([]uint64{1, 2, 3, 4})
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	flat := c.Flat()
	if len(flat) != 4 || flat[3] != 4 {
		t.Fatalf("Flat = %v", flat)
	}
}

func TestCoordsClone(t *testing.T) {
	c := NewCoords(2, 0)
	c.Append(1, 2)
	d := c.Clone()
	d.At(0)[0] = 99
	if c.Get(0, 0) != 1 {
		t.Fatal("clone aliases original")
	}
	if !c.Equal(c.Clone()) {
		t.Fatal("clone not equal")
	}
}

func TestCoordsEqual(t *testing.T) {
	a := NewCoords(2, 0)
	a.Append(1, 2)
	b := NewCoords(2, 0)
	b.Append(1, 2)
	if !a.Equal(b) {
		t.Fatal("equal buffers reported unequal")
	}
	b.Append(3, 4)
	if a.Equal(b) {
		t.Fatal("different lengths reported equal")
	}
	c := NewCoords(1, 0)
	c.Append(1)
	c.Append(2)
	if a.Equal(c) {
		t.Fatal("different dims reported equal")
	}
	d := NewCoords(2, 0)
	d.Append(1, 3)
	if a.Equal(d) {
		t.Fatal("different contents reported equal")
	}
}

func TestCoordsBounds(t *testing.T) {
	c := NewCoords(2, 0)
	if _, ok := c.Bounds(); ok {
		t.Fatal("empty buffer has bounds")
	}
	c.Append(5, 1)
	c.Append(2, 9)
	c.Append(3, 3)
	box, ok := c.Bounds()
	if !ok {
		t.Fatal("no bounds")
	}
	if box.Min[0] != 2 || box.Min[1] != 1 || box.Max[0] != 5 || box.Max[1] != 9 {
		t.Fatalf("Bounds = %v", box)
	}
}

func TestCoordsLocalShape(t *testing.T) {
	c := NewCoords(3, 0)
	if c.LocalShape() != nil {
		t.Fatal("empty buffer has local shape")
	}
	c.Append(0, 0, 1)
	c.Append(2, 2, 2)
	s := c.LocalShape()
	if !s.Equal(Shape{3, 3, 3}) {
		t.Fatalf("LocalShape = %v", s)
	}
}

func TestCoordsInShape(t *testing.T) {
	c := NewCoords(2, 0)
	c.Append(1, 1)
	c.Append(3, 3)
	if !c.InShape(Shape{4, 4}) {
		t.Fatal("points inside reported outside")
	}
	if c.InShape(Shape{4, 3}) {
		t.Fatal("point outside reported inside")
	}
	if c.InShape(Shape{4, 4, 4}) {
		t.Fatal("rank mismatch reported inside")
	}
}

// TestCoordsBoundsQuick property-tests that Bounds covers every point
// tightly.
func TestCoordsBoundsQuick(t *testing.T) {
	f := func(pts [][2]uint32) bool {
		if len(pts) == 0 {
			return true
		}
		c := NewCoords(2, len(pts))
		for _, p := range pts {
			c.Append(uint64(p[0]), uint64(p[1]))
		}
		box, ok := c.Bounds()
		if !ok {
			return false
		}
		minSeen := [2]bool{}
		maxSeen := [2]bool{}
		for i := 0; i < c.Len(); i++ {
			p := c.At(i)
			if !box.Contains(p) {
				return false
			}
			for d := 0; d < 2; d++ {
				if p[d] == box.Min[d] {
					minSeen[d] = true
				}
				if p[d] == box.Max[d] {
					maxSeen[d] = true
				}
			}
		}
		// Tightness: every bound is achieved by some point.
		return minSeen[0] && minSeen[1] && maxSeen[0] && maxSeen[1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
