package tensor

import (
	"testing"
	"testing/quick"
)

func TestBBoxContains(t *testing.T) {
	b := BBox{Min: []uint64{1, 1}, Max: []uint64{3, 4}}
	cases := []struct {
		p    []uint64
		want bool
	}{
		{[]uint64{1, 1}, true},
		{[]uint64{3, 4}, true},
		{[]uint64{2, 2}, true},
		{[]uint64{0, 2}, false},
		{[]uint64{4, 2}, false},
		{[]uint64{2, 5}, false},
		{[]uint64{2}, false},
	}
	for _, tc := range cases {
		if got := b.Contains(tc.p); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestBBoxOverlaps(t *testing.T) {
	a := BBox{Min: []uint64{0, 0}, Max: []uint64{2, 2}}
	cases := []struct {
		b    BBox
		want bool
	}{
		{BBox{Min: []uint64{2, 2}, Max: []uint64{4, 4}}, true},  // corner touch
		{BBox{Min: []uint64{3, 0}, Max: []uint64{4, 2}}, false}, // disjoint in x
		{BBox{Min: []uint64{0, 3}, Max: []uint64{2, 4}}, false}, // disjoint in y
		{BBox{Min: []uint64{1, 1}, Max: []uint64{1, 1}}, true},  // contained
		{BBox{Min: []uint64{0}, Max: []uint64{1}}, false},       // rank mismatch
	}
	for _, tc := range cases {
		if got := a.Overlaps(tc.b); got != tc.want {
			t.Errorf("Overlaps(%v) = %v, want %v", tc.b, got, tc.want)
		}
		// Symmetry, except for the rank-mismatch case.
		if len(tc.b.Min) == len(a.Min) && tc.b.Overlaps(a) != tc.want {
			t.Errorf("Overlaps not symmetric for %v", tc.b)
		}
	}
}

func TestBBoxUnion(t *testing.T) {
	a := BBox{Min: []uint64{2, 5}, Max: []uint64{4, 6}}
	b := BBox{Min: []uint64{0, 6}, Max: []uint64{3, 9}}
	u := a.Union(b)
	if u.Min[0] != 0 || u.Min[1] != 5 || u.Max[0] != 4 || u.Max[1] != 9 {
		t.Fatalf("Union = %v", u)
	}
	// Union must not alias its inputs.
	u.Min[0] = 99
	if a.Min[0] == 99 || b.Min[0] == 99 {
		t.Fatal("union aliases input")
	}
}

func TestNewRegionValidation(t *testing.T) {
	shape := Shape{10, 10}
	cases := []struct {
		name        string
		start, size []uint64
		ok          bool
	}{
		{"full", []uint64{0, 0}, []uint64{10, 10}, true},
		{"inner", []uint64{5, 5}, []uint64{1, 1}, true},
		{"zero size", []uint64{0, 0}, []uint64{0, 1}, false},
		{"start out", []uint64{10, 0}, []uint64{1, 1}, false},
		{"overrun", []uint64{5, 5}, []uint64{6, 1}, false},
		{"rank", []uint64{0}, []uint64{1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewRegion(shape, tc.start, tc.size)
			if (err == nil) != tc.ok {
				t.Fatalf("NewRegion(%v,%v) err=%v, want ok=%v", tc.start, tc.size, err, tc.ok)
			}
		})
	}
}

func TestRegionBBoxAndVolume(t *testing.T) {
	r, err := NewRegion(Shape{10, 10}, []uint64{2, 3}, []uint64{4, 5})
	if err != nil {
		t.Fatal(err)
	}
	box := r.BBox()
	if box.Min[0] != 2 || box.Max[0] != 5 || box.Min[1] != 3 || box.Max[1] != 7 {
		t.Fatalf("BBox = %v", box)
	}
	vol, ok := r.Volume()
	if !ok || vol != 20 {
		t.Fatalf("Volume = %d,%v", vol, ok)
	}
}

func TestRegionEachRowMajorOrder(t *testing.T) {
	r, err := NewRegion(Shape{4, 4}, []uint64{1, 2}, []uint64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	var got [][2]uint64
	r.Each(func(p []uint64) { got = append(got, [2]uint64{p[0], p[1]}) })
	want := [][2]uint64{{1, 2}, {1, 3}, {2, 2}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("Each visited %d cells, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cell %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestRegionCoordsMatchesEach(t *testing.T) {
	r, err := NewRegion(Shape{5, 5, 5}, []uint64{1, 0, 2}, []uint64{2, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	c := r.Coords()
	vol, _ := r.Volume()
	if uint64(c.Len()) != vol {
		t.Fatalf("Coords len %d, volume %d", c.Len(), vol)
	}
	i := 0
	r.Each(func(p []uint64) {
		q := c.At(i)
		for d := range p {
			if p[d] != q[d] {
				t.Fatalf("cell %d: Each %v vs Coords %v", i, p, q)
			}
		}
		i++
	})
}

func TestRegionContains(t *testing.T) {
	r, err := NewRegion(Shape{10}, []uint64{3}, []uint64{4})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Contains([]uint64{3}) || !r.Contains([]uint64{6}) {
		t.Fatal("boundary cells not contained")
	}
	if r.Contains([]uint64{2}) || r.Contains([]uint64{7}) {
		t.Fatal("outside cells contained")
	}
	if r.Contains([]uint64{3, 3}) {
		t.Fatal("rank mismatch contained")
	}
}

// TestRegionQuick property-tests that Contains agrees with membership in
// the enumerated cells and that BBox contains exactly the region.
func TestRegionQuick(t *testing.T) {
	f := func(s0, s1, z0, z1 uint8, px, py uint8) bool {
		shape := Shape{16, 16}
		start := []uint64{uint64(s0) % 12, uint64(s1) % 12}
		size := []uint64{uint64(z0)%4 + 1, uint64(z1)%4 + 1}
		r, err := NewRegion(shape, start, size)
		if err != nil {
			return true // invalid parameters are fine to reject
		}
		p := []uint64{uint64(px) % 16, uint64(py) % 16}
		enumerated := false
		r.Each(func(q []uint64) {
			if q[0] == p[0] && q[1] == p[1] {
				enumerated = true
			}
		})
		if r.Contains(p) != enumerated {
			return false
		}
		return !r.Contains(p) || r.BBox().Contains(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
