// Package tensor provides the coordinate, shape, and linear-address
// algebra shared by every sparse-tensor organization in this module.
//
// Coordinates are unsigned 64-bit integers, matching the paper's choice
// of "unsigned long long int" for synthetic-dataset coordinates. A point
// in a d-dimensional tensor is a slice of d coordinates. The package
// offers overflow-checked row-major and column-major linearization (the
// LINEAR organization of §II-B is built on it), bounding boxes and
// rectangular regions (used by fragment overlap search in Algorithm 3),
// and permutation helpers matching the "map" vector that the paper's
// BUILD functions return.
package tensor

import (
	"errors"
	"fmt"
	"math/bits"
)

// Shape is the extent of a tensor in each dimension.
type Shape []uint64

// ErrOverflow reports that a linear address or volume does not fit in a
// uint64. The paper (§II-B) names this as the principal risk of the
// LINEAR organization; callers are expected to fall back to block
// decomposition (see internal/store.Chunked) when they hit it.
var ErrOverflow = errors.New("tensor: linear address overflows uint64")

// ErrShape reports an invalid shape (no dimensions, or a zero extent).
var ErrShape = errors.New("tensor: invalid shape")

// Dims returns the number of dimensions.
func (s Shape) Dims() int { return len(s) }

// Validate checks that the shape has at least one dimension and that no
// extent is zero.
func (s Shape) Validate() error {
	if len(s) == 0 {
		return fmt.Errorf("%w: no dimensions", ErrShape)
	}
	for i, m := range s {
		if m == 0 {
			return fmt.Errorf("%w: dimension %d has zero extent", ErrShape, i)
		}
	}
	return nil
}

// Volume returns the total number of cells. ok is false when the product
// overflows uint64.
func (s Shape) Volume() (v uint64, ok bool) {
	v = 1
	for _, m := range s {
		hi, lo := bits.Mul64(v, m)
		if hi != 0 {
			return 0, false
		}
		v = lo
	}
	return v, true
}

// Contains reports whether point p lies inside the shape. It returns
// false when p has the wrong number of dimensions.
func (s Shape) Contains(p []uint64) bool {
	if len(p) != len(s) {
		return false
	}
	for i, c := range p {
		if c >= s[i] {
			return false
		}
	}
	return true
}

// Equal reports whether two shapes have identical dimensions and extents.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the shape.
func (s Shape) Clone() Shape {
	c := make(Shape, len(s))
	copy(c, s)
	return c
}

// MinExtent returns the smallest extent and its dimension index. The
// GCSR++/GCSC++ organizations (§II-C/D) select this dimension as the
// compressed axis of their 2D remapping.
func (s Shape) MinExtent() (extent uint64, dim int) {
	extent, dim = s[0], 0
	for i, m := range s {
		if m < extent {
			extent, dim = m, i
		}
	}
	return extent, dim
}

// String renders the shape as "m1 x m2 x ... x md".
func (s Shape) String() string {
	out := ""
	for i, m := range s {
		if i > 0 {
			out += "x"
		}
		out += fmt.Sprintf("%d", m)
	}
	return out
}

// Order selects a linearization convention.
type Order uint8

const (
	// RowMajor varies the last dimension fastest; it is the paper's
	// default (§II-B).
	RowMajor Order = iota
	// ColMajor varies the first dimension fastest.
	ColMajor
)

// Linearizer converts between d-dimensional coordinates and linear
// addresses for a fixed shape. Construction fails with ErrOverflow when
// the shape's volume does not fit in uint64, so a successfully built
// Linearizer can never wrap.
type Linearizer struct {
	shape   Shape
	strides []uint64
	order   Order
}

// NewLinearizer builds a Linearizer for shape using the given order.
func NewLinearizer(shape Shape, order Order) (*Linearizer, error) {
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	if _, ok := shape.Volume(); !ok {
		return nil, fmt.Errorf("%w: shape %v", ErrOverflow, shape)
	}
	d := len(shape)
	strides := make([]uint64, d)
	switch order {
	case RowMajor:
		strides[d-1] = 1
		for i := d - 2; i >= 0; i-- {
			strides[i] = strides[i+1] * shape[i+1]
		}
	case ColMajor:
		strides[0] = 1
		for i := 1; i < d; i++ {
			strides[i] = strides[i-1] * shape[i-1]
		}
	default:
		return nil, fmt.Errorf("tensor: unknown order %d", order)
	}
	return &Linearizer{shape: shape.Clone(), strides: strides, order: order}, nil
}

// Shape returns the shape the linearizer was built for.
func (l *Linearizer) Shape() Shape { return l.shape }

// Order returns the linearization convention.
func (l *Linearizer) Order() Order { return l.order }

// Linearize computes the linear address of p. The point must lie inside
// the shape; this is the caller's contract (hot path, no error return).
func (l *Linearizer) Linearize(p []uint64) uint64 {
	var addr uint64
	for i, c := range p {
		addr += c * l.strides[i]
	}
	return addr
}

// Delinearize writes the coordinates of addr into out, which must have
// length equal to the number of dimensions.
func (l *Linearizer) Delinearize(addr uint64, out []uint64) {
	d := len(l.shape)
	switch l.order {
	case RowMajor:
		for i := 0; i < d; i++ {
			out[i] = addr / l.strides[i]
			addr %= l.strides[i]
		}
	case ColMajor:
		for i := d - 1; i >= 0; i-- {
			out[i] = addr / l.strides[i]
			addr %= l.strides[i]
		}
	}
}

// LinearizeChecked is Linearize with a bounds check, for callers handling
// untrusted points.
func (l *Linearizer) LinearizeChecked(p []uint64) (uint64, error) {
	if !l.shape.Contains(p) {
		return 0, fmt.Errorf("tensor: point %v outside shape %v", p, l.shape)
	}
	return l.Linearize(p), nil
}
