package tensor

import "fmt"

// BBox is an inclusive axis-aligned bounding box. Fragment metadata
// carries one so Algorithm 3's READ can find the fragments that overlap
// a query without unpacking their indexes.
type BBox struct {
	Min, Max []uint64
}

// Dims returns the number of dimensions.
func (b BBox) Dims() int { return len(b.Min) }

// Contains reports whether point p lies inside the box.
func (b BBox) Contains(p []uint64) bool {
	if len(p) != len(b.Min) {
		return false
	}
	for i, c := range p {
		if c < b.Min[i] || c > b.Max[i] {
			return false
		}
	}
	return true
}

// Overlaps reports whether two boxes share at least one cell.
func (b BBox) Overlaps(o BBox) bool {
	if len(b.Min) != len(o.Min) {
		return false
	}
	for i := range b.Min {
		if b.Max[i] < o.Min[i] || o.Max[i] < b.Min[i] {
			return false
		}
	}
	return true
}

// Union returns the smallest box containing both.
func (b BBox) Union(o BBox) BBox {
	u := BBox{
		Min: append([]uint64(nil), b.Min...),
		Max: append([]uint64(nil), b.Max...),
	}
	for i := range o.Min {
		if o.Min[i] < u.Min[i] {
			u.Min[i] = o.Min[i]
		}
		if o.Max[i] > u.Max[i] {
			u.Max[i] = o.Max[i]
		}
	}
	return u
}

// Region is a rectangular query window given by a start corner and a
// size, the form the paper's read benchmark uses: start (m/2, ..., m/2),
// size (m/10, ..., m/10).
type Region struct {
	Start, Size []uint64
}

// NewRegion validates and builds a region inside shape.
func NewRegion(shape Shape, start, size []uint64) (Region, error) {
	if len(start) != len(shape) || len(size) != len(shape) {
		return Region{}, fmt.Errorf("tensor: region rank mismatch with shape %v", shape)
	}
	for i := range start {
		if size[i] == 0 {
			return Region{}, fmt.Errorf("tensor: region size has zero extent in dim %d", i)
		}
		if start[i] >= shape[i] || start[i]+size[i] > shape[i] {
			return Region{}, fmt.Errorf("tensor: region [%d,%d) exceeds extent %d in dim %d",
				start[i], start[i]+size[i], shape[i], i)
		}
	}
	return Region{Start: append([]uint64(nil), start...), Size: append([]uint64(nil), size...)}, nil
}

// Dims returns the number of dimensions.
func (r Region) Dims() int { return len(r.Start) }

// BBox returns the inclusive bounding box of the region.
func (r Region) BBox() BBox {
	min := append([]uint64(nil), r.Start...)
	max := make([]uint64, len(r.Start))
	for i := range max {
		max[i] = r.Start[i] + r.Size[i] - 1
	}
	return BBox{Min: min, Max: max}
}

// Volume returns the number of cells in the region; ok is false on
// uint64 overflow.
func (r Region) Volume() (uint64, bool) {
	return Shape(r.Size).Volume()
}

// Contains reports whether p lies inside the region.
func (r Region) Contains(p []uint64) bool {
	if len(p) != len(r.Start) {
		return false
	}
	for i, c := range p {
		if c < r.Start[i] || c >= r.Start[i]+r.Size[i] {
			return false
		}
	}
	return true
}

// Each visits every cell of the region in row-major order, reusing a
// single scratch point slice; the callback must not retain it.
func (r Region) Each(visit func(p []uint64)) {
	d := len(r.Start)
	p := append([]uint64(nil), r.Start...)
	for {
		visit(p)
		i := d - 1
		for ; i >= 0; i-- {
			p[i]++
			if p[i] < r.Start[i]+r.Size[i] {
				break
			}
			p[i] = r.Start[i]
		}
		if i < 0 {
			return
		}
	}
}

// Coords materializes every cell of the region, in row-major order, as a
// coordinate buffer. This is the probe list the paper's READ benchmark
// feeds to each organization's read function.
func (r Region) Coords() *Coords {
	vol, ok := r.Volume()
	if !ok {
		panic("tensor: region volume overflows uint64")
	}
	out := NewCoords(len(r.Start), int(vol))
	r.Each(func(p []uint64) { out.Append(p...) })
	return out
}
