package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCheckPerm(t *testing.T) {
	cases := []struct {
		name string
		perm []int
		ok   bool
	}{
		{"empty", []int{}, true},
		{"identity", []int{0, 1, 2}, true},
		{"swap", []int{1, 0}, true},
		{"out of range", []int{0, 3, 1}, false},
		{"negative", []int{0, -1}, false},
		{"duplicate", []int{0, 0}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := CheckPerm(tc.perm)
			if (err == nil) != tc.ok {
				t.Fatalf("CheckPerm(%v) = %v, want ok=%v", tc.perm, err, tc.ok)
			}
		})
	}
}

func TestApplyPermValues(t *testing.T) {
	vals := []float64{10, 20, 30}
	got := ApplyPermValues(vals, []int{2, 0, 1})
	want := []float64{20, 30, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ApplyPermValues = %v, want %v", got, want)
		}
	}
	// nil perm is identity and must not copy.
	if &vals[0] != &ApplyPermValues(vals, nil)[0] {
		t.Fatal("nil perm copied the slice")
	}
	mustPanic(t, func() { ApplyPermValues(vals, []int{0, 1}) })
}

func TestApplyPermCoords(t *testing.T) {
	c := NewCoords(2, 0)
	c.Append(1, 1)
	c.Append(2, 2)
	c.Append(3, 3)
	out := ApplyPermCoords(c, []int{2, 0, 1})
	if out.Get(2, 0) != 1 || out.Get(0, 0) != 2 || out.Get(1, 0) != 3 {
		t.Fatalf("ApplyPermCoords = %v", out.Flat())
	}
	if ApplyPermCoords(c, nil) != c {
		t.Fatal("nil perm should return the input")
	}
	mustPanic(t, func() { ApplyPermCoords(c, []int{0}) })
}

func TestInvertPerm(t *testing.T) {
	perm := []int{2, 0, 1}
	inv := InvertPerm(perm)
	for i, p := range perm {
		if inv[p] != i {
			t.Fatalf("InvertPerm(%v) = %v", perm, inv)
		}
	}
}

// TestPermRoundTripQuick property-tests that applying a random
// permutation and its inverse restores both value and coordinate
// buffers.
func TestPermRoundTripQuick(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		n := int(n8)%40 + 1
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(n)
		if CheckPerm(perm) != nil {
			return false
		}
		vals := make([]float64, n)
		c := NewCoords(2, n)
		for i := range vals {
			vals[i] = float64(i)
			c.Append(uint64(i), uint64(i*i))
		}
		permuted := ApplyPermValues(vals, perm)
		restored := ApplyPermValues(permuted, InvertPerm(perm))
		for i := range vals {
			if restored[i] != vals[i] {
				return false
			}
		}
		pc := ApplyPermCoords(c, perm)
		rc := ApplyPermCoords(pc, InvertPerm(perm))
		if !rc.Equal(c) {
			return false
		}
		// The permuted coordinates place input point i at slot perm[i].
		for i := 0; i < n; i++ {
			if pc.Get(perm[i], 0) != c.Get(i, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
