package tensor

import "fmt"

// This file implements the "map" vector returned by the paper's BUILD
// functions (Algorithms 1 and 2): map[i] records the new index of the
// i-th input point after the organization reorders it. Algorithm 3's
// WRITE uses the map to reorganize the value buffer before concatenating
// it with the packed coordinates.

// CheckPerm verifies that perm is a bijection on [0, len(perm)).
func CheckPerm(perm []int) error {
	seen := make([]bool, len(perm))
	for i, p := range perm {
		if p < 0 || p >= len(perm) {
			return fmt.Errorf("tensor: perm[%d]=%d out of range [0,%d)", i, p, len(perm))
		}
		if seen[p] {
			return fmt.Errorf("tensor: perm maps two inputs to slot %d", p)
		}
		seen[p] = true
	}
	return nil
}

// ApplyPermValues returns a new value buffer with out[perm[i]] = vals[i].
// A nil perm means identity and returns vals unchanged (no copy).
func ApplyPermValues(vals []float64, perm []int) []float64 {
	if perm == nil {
		return vals
	}
	if len(perm) != len(vals) {
		panic(fmt.Sprintf("tensor: perm length %d != values length %d", len(perm), len(vals)))
	}
	out := make([]float64, len(vals))
	for i, p := range perm {
		out[p] = vals[i]
	}
	return out
}

// ApplyPermCoords returns a new coordinate buffer with point i of the
// input stored at slot perm[i]. A nil perm returns the input unchanged.
func ApplyPermCoords(c *Coords, perm []int) *Coords {
	if perm == nil {
		return c
	}
	n := c.Len()
	if len(perm) != n {
		panic(fmt.Sprintf("tensor: perm length %d != point count %d", len(perm), n))
	}
	out := &Coords{dims: c.dims, data: make([]uint64, len(c.data))}
	for i, p := range perm {
		copy(out.data[p*c.dims:(p+1)*c.dims], c.At(i))
	}
	return out
}

// InvertPerm returns the inverse permutation: if perm maps input i to
// slot perm[i], the result maps slot s back to input inv[s].
func InvertPerm(perm []int) []int {
	inv := make([]int, len(perm))
	for i, p := range perm {
		inv[p] = i
	}
	return inv
}
