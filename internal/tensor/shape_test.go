package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestShapeValidate(t *testing.T) {
	cases := []struct {
		name  string
		shape Shape
		ok    bool
	}{
		{"nil", nil, false},
		{"empty", Shape{}, false},
		{"zero extent", Shape{4, 0, 4}, false},
		{"leading zero", Shape{0}, false},
		{"1d", Shape{7}, true},
		{"4d", Shape{2, 3, 4, 5}, true},
		{"huge", Shape{math.MaxUint64}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.shape.Validate()
			if (err == nil) != tc.ok {
				t.Fatalf("Validate(%v) = %v, want ok=%v", tc.shape, err, tc.ok)
			}
		})
	}
}

func TestShapeVolume(t *testing.T) {
	cases := []struct {
		shape Shape
		want  uint64
		ok    bool
	}{
		{Shape{3, 3, 3}, 27, true},
		{Shape{1}, 1, true},
		{Shape{8192, 8192}, 67108864, true},
		{Shape{1 << 32, 1 << 32}, 0, false},
		{Shape{1 << 32, 1 << 31}, 1 << 63, true},
		{Shape{math.MaxUint64, 2}, 0, false},
	}
	for _, tc := range cases {
		got, ok := tc.shape.Volume()
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("Volume(%v) = %d,%v want %d,%v", tc.shape, got, ok, tc.want, tc.ok)
		}
	}
}

func TestShapeContains(t *testing.T) {
	s := Shape{4, 5}
	cases := []struct {
		p    []uint64
		want bool
	}{
		{[]uint64{0, 0}, true},
		{[]uint64{3, 4}, true},
		{[]uint64{4, 4}, false},
		{[]uint64{3, 5}, false},
		{[]uint64{3}, false},
		{[]uint64{3, 4, 0}, false},
	}
	for _, tc := range cases {
		if got := s.Contains(tc.p); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestShapeMinExtent(t *testing.T) {
	cases := []struct {
		shape   Shape
		wantExt uint64
		wantDim int
	}{
		{Shape{3, 3, 3}, 3, 0},
		{Shape{9, 2, 5}, 2, 1},
		{Shape{4, 4, 1}, 1, 2},
		{Shape{2, 2}, 2, 0}, // ties pick the first dimension
	}
	for _, tc := range cases {
		ext, dim := tc.shape.MinExtent()
		if ext != tc.wantExt || dim != tc.wantDim {
			t.Errorf("MinExtent(%v) = %d,%d want %d,%d", tc.shape, ext, dim, tc.wantExt, tc.wantDim)
		}
	}
}

func TestShapeEqualClone(t *testing.T) {
	s := Shape{2, 3, 4}
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone not equal")
	}
	c[1] = 99
	if s.Equal(c) {
		t.Fatal("mutating clone affected equality")
	}
	if s[1] != 3 {
		t.Fatal("clone aliases original")
	}
	if s.Equal(Shape{2, 3}) {
		t.Fatal("different rank compared equal")
	}
}

func TestShapeString(t *testing.T) {
	if got := (Shape{8192, 8192}).String(); got != "8192x8192" {
		t.Fatalf("String = %q", got)
	}
	if got := (Shape{7}).String(); got != "7" {
		t.Fatalf("String = %q", got)
	}
}

func TestLinearizerRowMajorKnown(t *testing.T) {
	// The paper's Fig. 1(a): a 3x3x3 tensor where (0,0,1)->1,
	// (0,1,1)->4, (0,1,2)->5, (2,2,1)->25, (2,2,2)->26.
	lin, err := NewLinearizer(Shape{3, 3, 3}, RowMajor)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		p    []uint64
		addr uint64
	}{
		{[]uint64{0, 0, 1}, 1},
		{[]uint64{0, 1, 1}, 4},
		{[]uint64{0, 1, 2}, 5},
		{[]uint64{2, 2, 1}, 25},
		{[]uint64{2, 2, 2}, 26},
	}
	for _, tc := range cases {
		if got := lin.Linearize(tc.p); got != tc.addr {
			t.Errorf("Linearize(%v) = %d, want %d", tc.p, got, tc.addr)
		}
		out := make([]uint64, 3)
		lin.Delinearize(tc.addr, out)
		for i := range out {
			if out[i] != tc.p[i] {
				t.Errorf("Delinearize(%d) = %v, want %v", tc.addr, out, tc.p)
				break
			}
		}
	}
}

func TestLinearizerColMajorKnown(t *testing.T) {
	lin, err := NewLinearizer(Shape{3, 4}, ColMajor)
	if err != nil {
		t.Fatal(err)
	}
	// Column-major: address = c0 + c1*3.
	if got := lin.Linearize([]uint64{2, 0}); got != 2 {
		t.Fatalf("Linearize = %d, want 2", got)
	}
	if got := lin.Linearize([]uint64{1, 3}); got != 10 {
		t.Fatalf("Linearize = %d, want 10", got)
	}
	out := make([]uint64, 2)
	lin.Delinearize(10, out)
	if out[0] != 1 || out[1] != 3 {
		t.Fatalf("Delinearize(10) = %v", out)
	}
}

func TestLinearizerRejectsOverflowAndBadShape(t *testing.T) {
	if _, err := NewLinearizer(Shape{1 << 32, 1 << 33}, RowMajor); err == nil {
		t.Fatal("want overflow error")
	}
	if _, err := NewLinearizer(Shape{0, 4}, RowMajor); err == nil {
		t.Fatal("want shape error")
	}
	if _, err := NewLinearizer(nil, RowMajor); err == nil {
		t.Fatal("want shape error for nil")
	}
	if _, err := NewLinearizer(Shape{2, 2}, Order(9)); err == nil {
		t.Fatal("want unknown order error")
	}
}

func TestLinearizerChecked(t *testing.T) {
	lin, err := NewLinearizer(Shape{4, 4}, RowMajor)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lin.LinearizeChecked([]uint64{4, 0}); err == nil {
		t.Fatal("want out-of-shape error")
	}
	addr, err := lin.LinearizeChecked([]uint64{1, 2})
	if err != nil || addr != 6 {
		t.Fatalf("LinearizeChecked = %d, %v", addr, err)
	}
}

// TestLinearizerRoundTripQuick property-tests that Delinearize inverts
// Linearize for random shapes and points, both orders.
func TestLinearizerRoundTripQuick(t *testing.T) {
	f := func(dims8 uint8, extents [6]uint16, point [6]uint32, colMajor bool) bool {
		d := int(dims8)%6 + 1
		shape := make(Shape, d)
		p := make([]uint64, d)
		for i := 0; i < d; i++ {
			shape[i] = uint64(extents[i])%64 + 1
			p[i] = uint64(point[i]) % shape[i]
		}
		order := RowMajor
		if colMajor {
			order = ColMajor
		}
		lin, err := NewLinearizer(shape, order)
		if err != nil {
			return false
		}
		addr := lin.Linearize(p)
		vol, _ := shape.Volume()
		if addr >= vol {
			return false
		}
		out := make([]uint64, d)
		lin.Delinearize(addr, out)
		for i := range p {
			if out[i] != p[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestLinearizerDistinctQuick property-tests that distinct points get
// distinct addresses (injectivity).
func TestLinearizerDistinctQuick(t *testing.T) {
	f := func(a, b [3]uint16) bool {
		shape := Shape{1 << 16, 1 << 16, 1 << 16}
		lin, err := NewLinearizer(shape, RowMajor)
		if err != nil {
			return false
		}
		pa := []uint64{uint64(a[0]), uint64(a[1]), uint64(a[2])}
		pb := []uint64{uint64(b[0]), uint64(b[1]), uint64(b[2])}
		same := pa[0] == pb[0] && pa[1] == pb[1] && pa[2] == pb[2]
		return (lin.Linearize(pa) == lin.Linearize(pb)) == same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearizerAccessors(t *testing.T) {
	shape := Shape{5, 6}
	lin, err := NewLinearizer(shape, ColMajor)
	if err != nil {
		t.Fatal(err)
	}
	if !lin.Shape().Equal(shape) {
		t.Fatalf("Shape() = %v", lin.Shape())
	}
	if lin.Order() != ColMajor {
		t.Fatalf("Order() = %v", lin.Order())
	}
	// The linearizer must hold its own copy of the shape.
	shape[0] = 99
	if lin.Shape()[0] == 99 {
		t.Fatal("linearizer aliases caller shape")
	}
}
