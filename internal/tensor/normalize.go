package tensor

import (
	"fmt"
	"sort"
)

// SortByAddress reorders points and their values into row-major
// linear-address order (ties keep input order). It returns new buffers;
// the inputs are unchanged.
func SortByAddress(c *Coords, vals []float64, shape Shape) (*Coords, []float64, error) {
	if c.Dims() != shape.Dims() {
		return nil, nil, fmt.Errorf("tensor: %d-dim coords for %d-dim shape", c.Dims(), shape.Dims())
	}
	if vals != nil && c.Len() != len(vals) {
		return nil, nil, fmt.Errorf("tensor: %d points with %d values", c.Len(), len(vals))
	}
	lin, err := NewLinearizer(shape, RowMajor)
	if err != nil {
		return nil, nil, err
	}
	n := c.Len()
	keys := make([]uint64, n)
	for i := 0; i < n; i++ {
		p := c.At(i)
		if !shape.Contains(p) {
			return nil, nil, fmt.Errorf("tensor: point %v outside shape %v", p, shape)
		}
		keys[i] = lin.Linearize(p)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })

	outC := NewCoords(c.Dims(), n)
	var outV []float64
	if vals != nil {
		outV = make([]float64, 0, n)
	}
	for _, i := range order {
		outC.Append(c.At(i)...)
		if vals != nil {
			outV = append(outV, vals[i])
		}
	}
	return outC, outV, nil
}

// DedupKeepLast removes duplicate points from an address-sorted buffer,
// keeping the value of each cell's last occurrence in the original
// input order — the same newest-wins rule the storage engine applies
// across fragments. Input must come from SortByAddress (stable order
// makes "last occurrence" well defined).
func DedupKeepLast(c *Coords, vals []float64, shape Shape) (*Coords, []float64, error) {
	if c.Dims() != shape.Dims() {
		return nil, nil, fmt.Errorf("tensor: %d-dim coords for %d-dim shape", c.Dims(), shape.Dims())
	}
	if vals != nil && c.Len() != len(vals) {
		return nil, nil, fmt.Errorf("tensor: %d points with %d values", c.Len(), len(vals))
	}
	lin, err := NewLinearizer(shape, RowMajor)
	if err != nil {
		return nil, nil, err
	}
	n := c.Len()
	outC := NewCoords(c.Dims(), n)
	var outV []float64
	if vals != nil {
		outV = make([]float64, 0, n)
	}
	for i := 0; i < n; i++ {
		if i+1 < n && lin.Linearize(c.At(i)) == lin.Linearize(c.At(i+1)) {
			continue // a later duplicate supersedes this one
		}
		outC.Append(c.At(i)...)
		if vals != nil {
			outV = append(outV, vals[i])
		}
	}
	return outC, outV, nil
}

// Normalize sorts by linear address and removes duplicates, newest
// wins — the canonical form for a dataset about to become one fragment.
func Normalize(c *Coords, vals []float64, shape Shape) (*Coords, []float64, error) {
	sc, sv, err := SortByAddress(c, vals, shape)
	if err != nil {
		return nil, nil, err
	}
	return DedupKeepLast(sc, sv, shape)
}
