package tensor

import "fmt"

// Coords is a buffer of points in a d-dimensional tensor, stored flat and
// point-major: point i occupies data[i*dims : (i+1)*dims]. This matches
// the paper's b_coor buffer — an unsorted 1D coordinate vector — and is
// the input to every organization's BUILD function.
type Coords struct {
	dims int
	data []uint64
}

// NewCoords returns an empty coordinate buffer for dims dimensions with
// capacity for capHint points.
func NewCoords(dims, capHint int) *Coords {
	if dims <= 0 {
		panic("tensor: NewCoords with non-positive dims")
	}
	if capHint < 0 {
		capHint = 0
	}
	return &Coords{dims: dims, data: make([]uint64, 0, capHint*dims)}
}

// FromFlat wraps an existing flat, point-major buffer. The slice is used
// directly, not copied.
func FromFlat(dims int, data []uint64) (*Coords, error) {
	if dims <= 0 {
		return nil, fmt.Errorf("tensor: FromFlat with non-positive dims %d", dims)
	}
	if len(data)%dims != 0 {
		return nil, fmt.Errorf("tensor: flat buffer length %d not a multiple of dims %d", len(data), dims)
	}
	return &Coords{dims: dims, data: data}, nil
}

// Len returns the number of points.
func (c *Coords) Len() int { return len(c.data) / c.dims }

// Dims returns the number of dimensions.
func (c *Coords) Dims() int { return c.dims }

// At returns a view of point i. Mutating the returned slice mutates the
// buffer.
func (c *Coords) At(i int) []uint64 {
	return c.data[i*c.dims : (i+1)*c.dims : (i+1)*c.dims]
}

// Get returns coordinate d of point i.
func (c *Coords) Get(i, d int) uint64 { return c.data[i*c.dims+d] }

// Append adds a point, which must have exactly Dims coordinates.
func (c *Coords) Append(p ...uint64) {
	if len(p) != c.dims {
		panic(fmt.Sprintf("tensor: Append of %d coords to %d-dim buffer", len(p), c.dims))
	}
	c.data = append(c.data, p...)
}

// AppendFlat adds pre-flattened points (length must be a multiple of Dims).
func (c *Coords) AppendFlat(flat []uint64) {
	if len(flat)%c.dims != 0 {
		panic(fmt.Sprintf("tensor: AppendFlat of %d values to %d-dim buffer", len(flat), c.dims))
	}
	c.data = append(c.data, flat...)
}

// Flat exposes the underlying point-major buffer.
func (c *Coords) Flat() []uint64 { return c.data }

// Clone deep-copies the buffer.
func (c *Coords) Clone() *Coords {
	data := make([]uint64, len(c.data))
	copy(data, c.data)
	return &Coords{dims: c.dims, data: data}
}

// Bounds returns the inclusive bounding box of all points. ok is false
// when the buffer is empty.
func (c *Coords) Bounds() (box BBox, ok bool) {
	n := c.Len()
	if n == 0 {
		return BBox{}, false
	}
	box.Min = append([]uint64(nil), c.At(0)...)
	box.Max = append([]uint64(nil), c.At(0)...)
	for i := 1; i < n; i++ {
		p := c.At(i)
		for d, v := range p {
			if v < box.Min[d] {
				box.Min[d] = v
			}
			if v > box.Max[d] {
				box.Max[d] = v
			}
		}
	}
	return box, true
}

// LocalShape returns the tight local boundary s_l of the points — the
// per-dimension extent max+1 — as extracted at the top of the paper's
// GCSR++_BUILD and CSF_BUILD (Algorithms 1 and 2). It returns nil for an
// empty buffer.
func (c *Coords) LocalShape() Shape {
	box, ok := c.Bounds()
	if !ok {
		return nil
	}
	s := make(Shape, c.dims)
	for d := range s {
		s[d] = box.Max[d] + 1
	}
	return s
}

// InShape reports whether every point lies inside shape.
func (c *Coords) InShape(shape Shape) bool {
	if len(shape) != c.dims {
		return false
	}
	for i, n := 0, c.Len(); i < n; i++ {
		if !shape.Contains(c.At(i)) {
			return false
		}
	}
	return true
}

// Equal reports whether two buffers hold identical points in identical
// order.
func (c *Coords) Equal(o *Coords) bool {
	if c.dims != o.dims || len(c.data) != len(o.data) {
		return false
	}
	for i := range c.data {
		if c.data[i] != o.data[i] {
			return false
		}
	}
	return true
}
