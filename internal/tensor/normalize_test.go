package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSortByAddress(t *testing.T) {
	shape := Shape{4, 4}
	c := NewCoords(2, 0)
	c.Append(3, 3) // 15
	c.Append(0, 1) // 1
	c.Append(2, 0) // 8
	vals := []float64{15, 1, 8}
	sc, sv, err := SortByAddress(c, vals, shape)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 8, 15}
	for i, v := range want {
		if sv[i] != v {
			t.Fatalf("sorted values = %v, want %v", sv, want)
		}
	}
	if sc.Get(0, 1) != 1 || sc.Get(2, 0) != 3 {
		t.Fatalf("sorted coords = %v", sc.Flat())
	}
	// Inputs unchanged.
	if c.Get(0, 0) != 3 || vals[0] != 15 {
		t.Fatal("inputs mutated")
	}
}

func TestSortByAddressValidation(t *testing.T) {
	shape := Shape{4, 4}
	c := NewCoords(2, 0)
	c.Append(5, 0) // outside
	if _, _, err := SortByAddress(c, []float64{1}, shape); err == nil {
		t.Error("out-of-shape point accepted")
	}
	c2 := NewCoords(3, 0)
	c2.Append(1, 1, 1)
	if _, _, err := SortByAddress(c2, []float64{1}, shape); err == nil {
		t.Error("rank mismatch accepted")
	}
	c3 := NewCoords(2, 0)
	c3.Append(1, 1)
	if _, _, err := SortByAddress(c3, []float64{1, 2}, shape); err == nil {
		t.Error("value count mismatch accepted")
	}
}

func TestDedupKeepLast(t *testing.T) {
	shape := Shape{4, 4}
	c := NewCoords(2, 0)
	// Pre-sorted with stable duplicate order: the later input wins.
	c.Append(0, 1)
	c.Append(0, 1)
	c.Append(2, 2)
	vals := []float64{10, 20, 30}
	dc, dv, err := DedupKeepLast(c, vals, shape)
	if err != nil {
		t.Fatal(err)
	}
	if dc.Len() != 2 || dv[0] != 20 || dv[1] != 30 {
		t.Fatalf("dedup = %v, %v", dc.Flat(), dv)
	}
}

func TestNormalizeNewestWins(t *testing.T) {
	shape := Shape{8, 8}
	c := NewCoords(2, 0)
	c.Append(5, 5)
	c.Append(1, 1)
	c.Append(5, 5) // rewrites the first point
	vals := []float64{1, 2, 3}
	nc, nv, err := Normalize(c, vals, shape)
	if err != nil {
		t.Fatal(err)
	}
	if nc.Len() != 2 {
		t.Fatalf("normalized to %d points", nc.Len())
	}
	if nc.Get(0, 0) != 1 || nv[0] != 2 {
		t.Fatalf("first cell %v = %v", nc.At(0), nv[0])
	}
	if nc.Get(1, 0) != 5 || nv[1] != 3 {
		t.Fatalf("second cell %v = %v (newest must win)", nc.At(1), nv[1])
	}
}

func TestNormalizeNilValues(t *testing.T) {
	shape := Shape{4}
	c := NewCoords(1, 0)
	c.Append(2)
	c.Append(2)
	c.Append(0)
	nc, nv, err := Normalize(c, nil, shape)
	if err != nil || nv != nil {
		t.Fatalf("nil values: %v, %v", nv, err)
	}
	if nc.Len() != 2 || nc.Get(0, 0) != 0 {
		t.Fatalf("normalized = %v", nc.Flat())
	}
}

// TestNormalizeQuick property-tests that normalization produces a
// strictly increasing, duplicate-free address sequence equal to the
// input's distinct cell set, with the last-writer value per cell.
func TestNormalizeQuick(t *testing.T) {
	shape := Shape{8, 8}
	lin, err := NewLinearizer(shape, RowMajor)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, n8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n8) % 60
		c := NewCoords(2, n)
		vals := make([]float64, n)
		want := map[uint64]float64{}
		for i := 0; i < n; i++ {
			p := []uint64{uint64(rng.Intn(8)), uint64(rng.Intn(8))}
			c.Append(p...)
			vals[i] = rng.Float64()
			want[lin.Linearize(p)] = vals[i]
		}
		nc, nv, err := Normalize(c, vals, shape)
		if err != nil {
			return false
		}
		if nc.Len() != len(want) {
			return false
		}
		var prev uint64
		for i := 0; i < nc.Len(); i++ {
			addr := lin.Linearize(nc.At(i))
			if i > 0 && addr <= prev {
				return false
			}
			prev = addr
			if want[addr] != nv[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
