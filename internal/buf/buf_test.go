package buf

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestScalarRoundTrip(t *testing.T) {
	w := NewWriter(0)
	w.U8(0xAB)
	w.U16(0xBEEF)
	w.U32(0xDEADBEEF)
	w.U64(0x0123456789ABCDEF)
	w.F64(math.Pi)
	w.F64(math.Inf(-1))

	r := NewReader(w.Bytes())
	if got := r.U8(); got != 0xAB {
		t.Fatalf("U8 = %#x", got)
	}
	if got := r.U16(); got != 0xBEEF {
		t.Fatalf("U16 = %#x", got)
	}
	if got := r.U32(); got != 0xDEADBEEF {
		t.Fatalf("U32 = %#x", got)
	}
	if got := r.U64(); got != 0x0123456789ABCDEF {
		t.Fatalf("U64 = %#x", got)
	}
	if got := r.F64(); got != math.Pi {
		t.Fatalf("F64 = %v", got)
	}
	if got := r.F64(); !math.IsInf(got, -1) {
		t.Fatalf("F64 = %v", got)
	}
	if r.Err() != nil || r.Remaining() != 0 {
		t.Fatalf("err=%v remaining=%d", r.Err(), r.Remaining())
	}
}

func TestVectorRoundTrip(t *testing.T) {
	u := []uint64{0, 1, math.MaxUint64, 42}
	f := []float64{0, -1.5, math.MaxFloat64}
	w := NewWriter(0)
	w.U64s(u)
	w.F64s(f)
	w.U64s(nil)
	w.F64s(nil)

	r := NewReader(w.Bytes())
	gu := r.U64s()
	gf := r.F64s()
	eu := r.U64s()
	ef := r.F64s()
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if len(gu) != len(u) || gu[2] != math.MaxUint64 {
		t.Fatalf("U64s = %v", gu)
	}
	if len(gf) != len(f) || gf[1] != -1.5 {
		t.Fatalf("F64s = %v", gf)
	}
	if len(eu) != 0 || len(ef) != 0 {
		t.Fatalf("empty vectors = %v, %v", eu, ef)
	}
}

func TestRawU64s(t *testing.T) {
	w := NewWriter(0)
	w.RawU64s([]uint64{7, 8, 9})
	r := NewReader(w.Bytes())
	got := r.RawU64s(3)
	if r.Err() != nil || got[0] != 7 || got[2] != 9 {
		t.Fatalf("RawU64s = %v, err=%v", got, r.Err())
	}
}

func TestBytes32(t *testing.T) {
	w := NewWriter(0)
	w.Bytes32([]byte("hello"))
	w.Bytes32(nil)
	r := NewReader(w.Bytes())
	if got := string(r.Bytes32()); got != "hello" {
		t.Fatalf("Bytes32 = %q", got)
	}
	if got := r.Bytes32(); len(got) != 0 {
		t.Fatalf("empty Bytes32 = %v", got)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestTruncationIsSticky(t *testing.T) {
	w := NewWriter(0)
	w.U16(7)
	r := NewReader(w.Bytes())
	if r.U64() != 0 {
		t.Fatal("truncated read returned data")
	}
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("err = %v", r.Err())
	}
	// Every subsequent read keeps failing and returns zero values.
	if r.U8() != 0 || r.U16() != 0 || r.U64s() != nil || r.F64s() != nil || r.Bytes32() != nil {
		t.Fatal("sticky error did not zero subsequent reads")
	}
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("err changed to %v", r.Err())
	}
}

func TestVectorHugeCountRejected(t *testing.T) {
	// A length prefix far beyond the buffer must fail cleanly rather
	// than attempt a giant allocation.
	w := NewWriter(0)
	w.U64(math.MaxUint64) // vector "length"
	r := NewReader(w.Bytes())
	if got := r.U64s(); got != nil {
		t.Fatalf("U64s = %v", got)
	}
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("err = %v", r.Err())
	}

	w2 := NewWriter(0)
	w2.U64(math.MaxUint64)
	r2 := NewReader(w2.Bytes())
	if got := r2.F64s(); got != nil || !errors.Is(r2.Err(), ErrTruncated) {
		t.Fatalf("F64s = %v, err=%v", got, r2.Err())
	}

	r3 := NewReader(w.Bytes())
	if got := r3.RawU64s(1 << 60); got != nil || !errors.Is(r3.Err(), ErrTruncated) {
		t.Fatalf("RawU64s = %v, err=%v", got, r3.Err())
	}
}

func TestExpect(t *testing.T) {
	w := NewWriter(0)
	w.U32(0xCAFE)
	r := NewReader(w.Bytes())
	r.Expect(0xCAFE, "magic")
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	r2 := NewReader(w.Bytes())
	r2.Expect(0xBEEF, "magic")
	if r2.Err() == nil {
		t.Fatal("Expect accepted wrong marker")
	}
}

func TestWriterLen(t *testing.T) {
	w := NewWriter(-5) // negative hint is clamped
	if w.Len() != 0 {
		t.Fatalf("Len = %d", w.Len())
	}
	w.U32(1)
	if w.Len() != 4 {
		t.Fatalf("Len = %d", w.Len())
	}
}

// TestMixedRoundTripQuick property-tests that a random sequence of
// sections round-trips exactly.
func TestMixedRoundTripQuick(t *testing.T) {
	f := func(a uint64, us []uint64, fs []float64, bs []byte, b uint8) bool {
		w := NewWriter(0)
		w.U64(a)
		w.U64s(us)
		w.Bytes32(bs)
		w.F64s(fs)
		w.U8(b)

		r := NewReader(w.Bytes())
		if r.U64() != a {
			return false
		}
		gu := r.U64s()
		gb := r.Bytes32()
		gf := r.F64s()
		if r.U8() != b || r.Err() != nil || r.Remaining() != 0 {
			return false
		}
		if len(gu) != len(us) || len(gb) != len(bs) || len(gf) != len(fs) {
			return false
		}
		for i := range us {
			if gu[i] != us[i] {
				return false
			}
		}
		for i := range bs {
			if gb[i] != bs[i] {
				return false
			}
		}
		for i := range fs {
			// NaN round-trips bit-exactly but compares unequal.
			if gf[i] != fs[i] && !(math.IsNaN(gf[i]) && math.IsNaN(fs[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestWriterResetAndPool: Reset keeps capacity; pooled writers start
// empty and grow to the requested hint.
func TestWriterResetAndPool(t *testing.T) {
	w := NewWriter(0)
	w.U64(42)
	c := cap(w.Bytes())
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("Len after Reset = %d", w.Len())
	}
	w.U64(7)
	if cap(w.Bytes()) != c {
		t.Fatalf("Reset dropped capacity: %d -> %d", c, cap(w.Bytes()))
	}
	if got := NewReader(w.Bytes()).U64(); got != 7 {
		t.Fatalf("reused writer encoded %d", got)
	}

	p := GetWriter(128)
	if p.Len() != 0 || cap(p.Bytes()) < 128 {
		t.Fatalf("pooled writer len=%d cap=%d", p.Len(), cap(p.Bytes()))
	}
	p.U32(0xFEED)
	PutWriter(p)
	q := GetWriter(0)
	if q.Len() != 0 {
		t.Fatalf("recycled writer not reset: len=%d", q.Len())
	}
	PutWriter(q)
	PutWriter(nil) // must not panic
}
