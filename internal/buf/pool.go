package buf

import "sync"

// The writer pool recycles serialization buffers across hot-path
// encodes (manifest checkpoints, manifest-log records, fragment
// headers). A large ingest serializes thousands of small buffers; with
// the pool they reuse a handful of allocations instead of one each.

var writerPool = sync.Pool{New: func() any { return &Writer{} }}

// GetWriter returns a pooled writer with at least capHint bytes of
// capacity. Callers must not retain the writer's Bytes past PutWriter.
func GetWriter(capHint int) *Writer {
	w := writerPool.Get().(*Writer)
	w.Reset()
	if capHint > 0 && cap(w.b) < capHint {
		w.b = make([]byte, 0, capHint)
	}
	return w
}

// PutWriter recycles a writer obtained from GetWriter. The caller must
// be done with every slice previously returned by Bytes — a recycled
// writer overwrites them. Oversized buffers are dropped rather than
// pooled so one huge serialization doesn't pin memory forever.
func PutWriter(w *Writer) {
	const maxPooled = 1 << 20
	if w == nil || cap(w.b) > maxPooled {
		return
	}
	w.Reset()
	writerPool.Put(w)
}
