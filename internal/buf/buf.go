// Package buf implements the little-endian binary serialization used by
// every storage organization's payload and by the fragment codec. The
// paper's BUILD functions end by concatenating their vectors "into a
// single buffer" (Algorithms 1 and 2, last lines); Writer and Reader are
// that concatenation, with length prefixes so the READ side can split
// the buffer back apart.
package buf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrTruncated reports a read past the end of the buffer.
var ErrTruncated = errors.New("buf: truncated buffer")

// Writer accumulates a little-endian binary buffer.
type Writer struct {
	b []byte
}

// NewWriter returns a writer with the given capacity hint in bytes.
func NewWriter(capHint int) *Writer {
	if capHint < 0 {
		capHint = 0
	}
	return &Writer{b: make([]byte, 0, capHint)}
}

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.b) }

// Reset discards the accumulated bytes but keeps the underlying
// capacity, so a recycled writer (see GetWriter/PutWriter) serializes
// into memory it already owns.
func (w *Writer) Reset() { w.b = w.b[:0] }

// Bytes returns the accumulated buffer. The writer retains ownership; do
// not write after taking the result.
func (w *Writer) Bytes() []byte { return w.b }

// U8 appends a byte.
func (w *Writer) U8(v uint8) { w.b = append(w.b, v) }

// U16 appends a little-endian uint16.
func (w *Writer) U16(v uint16) { w.b = binary.LittleEndian.AppendUint16(w.b, v) }

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }

// F64 appends a float64 as its IEEE-754 bits.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// U64s appends a length-prefixed uint64 vector.
func (w *Writer) U64s(v []uint64) {
	w.U64(uint64(len(v)))
	w.RawU64s(v)
}

// RawU64s appends a uint64 vector without a length prefix.
func (w *Writer) RawU64s(v []uint64) {
	off := len(w.b)
	w.b = append(w.b, make([]byte, 8*len(v))...)
	for i, x := range v {
		binary.LittleEndian.PutUint64(w.b[off+8*i:], x)
	}
}

// F64s appends a length-prefixed float64 vector.
func (w *Writer) F64s(v []float64) {
	w.U64(uint64(len(v)))
	off := len(w.b)
	w.b = append(w.b, make([]byte, 8*len(v))...)
	for i, x := range v {
		binary.LittleEndian.PutUint64(w.b[off+8*i:], math.Float64bits(x))
	}
}

// Bytes32 appends a length-prefixed byte slice (uint32 length).
func (w *Writer) Bytes32(v []byte) {
	w.U32(uint32(len(v)))
	w.b = append(w.b, v...)
}

// Reader consumes a buffer produced by Writer. Errors are sticky: after
// the first failure every read returns zero values and Err reports the
// failure, so decoding code can run straight-line and check once.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader wraps a buffer for reading.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

func (r *Reader) fail(n int) bool {
	if r.err != nil {
		return true
	}
	if r.off+n > len(r.b) {
		r.err = fmt.Errorf("%w: need %d bytes at offset %d, have %d", ErrTruncated, n, r.off, len(r.b)-r.off)
		return true
	}
	return false
}

// U8 reads a byte.
func (r *Reader) U8() uint8 {
	if r.fail(1) {
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 {
	if r.fail(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	if r.fail(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	if r.fail(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// U64s reads a length-prefixed uint64 vector.
func (r *Reader) U64s() []uint64 {
	n := r.U64()
	return r.RawU64s(n)
}

// RawU64s reads n uint64 values without a length prefix.
func (r *Reader) RawU64s(n uint64) []uint64 {
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)-r.off)/8 {
		r.err = fmt.Errorf("%w: vector of %d uint64s at offset %d exceeds buffer", ErrTruncated, n, r.off)
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(r.b[r.off:])
		r.off += 8
	}
	return out
}

// F64s reads a length-prefixed float64 vector.
func (r *Reader) F64s() []float64 {
	n := r.U64()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)-r.off)/8 {
		r.err = fmt.Errorf("%w: vector of %d float64s at offset %d exceeds buffer", ErrTruncated, n, r.off)
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
		r.off += 8
	}
	return out
}

// Bytes32 reads a length-prefixed byte slice (uint32 length). The result
// aliases the underlying buffer.
func (r *Reader) Bytes32() []byte {
	n := int(r.U32())
	if r.fail(n) {
		return nil
	}
	v := r.b[r.off : r.off+n : r.off+n]
	r.off += n
	return v
}

// Expect consumes and verifies a fixed marker value, failing the reader
// on mismatch. Used for format magic numbers.
func (r *Reader) Expect(marker uint32, what string) {
	got := r.U32()
	if r.err == nil && got != marker {
		r.err = fmt.Errorf("buf: bad %s marker: got %#x want %#x", what, got, marker)
	}
}
