package gen

// rng is a splitmix64 generator. Generation is deterministic in the
// configured seed and independent of worker count because every
// first-dimension slab re-seeds from (seed, slab index).
type rng struct {
	state uint64
}

func newRNG(seed uint64) *rng { return &rng{state: seed} }

// derive builds an independent stream for a substream index, mixing the
// index through one splitmix64 step so adjacent substreams decorrelate.
func derive(seed, substream uint64) *rng {
	r := newRNG(seed ^ (substream+1)*0x9E3779B97F4A7C15)
	r.next()
	return r
}

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float returns a uniform draw in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / (1 << 53)
}
