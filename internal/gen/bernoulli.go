package gen

import (
	"math"

	"sparseart/internal/psort"
	"sparseart/internal/tensor"
)

// geometricSkip emits the positions of Bernoulli(p) successes over
// [0, n) by sampling the geometric gaps between them, visiting O(p·n)
// positions instead of n.
func geometricSkip(r *rng, p float64, n uint64, emit func(pos uint64)) {
	if p <= 0 || n == 0 {
		return
	}
	if p >= 1 {
		for pos := uint64(0); pos < n; pos++ {
			emit(pos)
		}
		return
	}
	lg := math.Log1p(-p)
	pos := uint64(0)
	for {
		g := math.Log1p(-r.float()) / lg
		if g >= float64(n-pos) {
			return
		}
		pos += uint64(g)
		emit(pos)
		pos++
		if pos >= n {
			return
		}
	}
}

// generateBernoulli emits GSP (uniform background only) and MSP
// (background plus a denser cluster block). Each first-dimension row
// draws from its own substreams, so the output is deterministic in the
// seed regardless of worker count, and points come out in row-major
// order: per row, the background and cluster position streams are both
// increasing in the row-local address and are merged with
// deduplication — which realizes an exact union of the two independent
// Bernoulli fields inside the cluster.
func generateBernoulli(cfg Config) *tensor.Coords {
	shape := cfg.Shape
	d := shape.Dims()
	rowShape := tensor.Shape(shape[1:])

	var rowLin *tensor.Linearizer
	var rowVol uint64 = 1
	if d > 1 {
		var err error
		rowLin, err = tensor.NewLinearizer(rowShape, tensor.RowMajor)
		if err != nil {
			panic(err) // cfg.validate checked the full volume already
		}
		rowVol, _ = rowShape.Volume()
	}

	cluster := cfg.Pattern == MSP && cfg.ClusterProb > 0
	var clusterRowShape tensor.Shape
	var clusterRowLin *tensor.Linearizer
	var clusterRowVol uint64 = 1
	if cluster && d > 1 {
		clusterRowShape = tensor.Shape(cfg.ClusterSize[1:])
		var err error
		clusterRowLin, err = tensor.NewLinearizer(clusterRowShape, tensor.RowMajor)
		if err != nil {
			panic(err)
		}
		clusterRowVol, _ = clusterRowShape.Volume()
	}

	workers := psort.Workers(cfg.Workers)
	return slabConcat(shape, workers, func(i0, i1 uint64, out *tensor.Coords) {
		p := make([]uint64, d)
		offs := make([]uint64, d-1)
		var bg, cl []uint64
		for i := i0; i < i1; i++ {
			bg = bg[:0]
			bgRNG := derive(cfg.Seed, 2*i)
			geometricSkip(bgRNG, cfg.Prob, rowVol, func(pos uint64) { bg = append(bg, pos) })

			cl = cl[:0]
			if cluster && i >= cfg.ClusterStart[0] && i < cfg.ClusterStart[0]+cfg.ClusterSize[0] {
				clRNG := derive(cfg.Seed^0xC1C1C1C1C1C1C1C1, 2*i+1)
				geometricSkip(clRNG, cfg.ClusterProb, clusterRowVol, func(pos uint64) {
					if d == 1 {
						cl = append(cl, 0)
						return
					}
					clusterRowLin.Delinearize(pos, offs)
					g := make([]uint64, d-1)
					for j := range offs {
						g[j] = cfg.ClusterStart[j+1] + offs[j]
					}
					cl = append(cl, rowLin.Linearize(g))
				})
			}

			p[0] = i
			emit := func(addr uint64) {
				if d > 1 {
					rowLin.Delinearize(addr, p[1:])
				}
				out.Append(p...)
			}
			// Merge the two increasing streams, deduplicating cells
			// hit by both.
			bi, ci := 0, 0
			for bi < len(bg) || ci < len(cl) {
				switch {
				case ci >= len(cl) || (bi < len(bg) && bg[bi] < cl[ci]):
					emit(bg[bi])
					bi++
				case bi >= len(bg) || cl[ci] < bg[bi]:
					emit(cl[ci])
					ci++
				default: // equal
					emit(bg[bi])
					bi++
					ci++
				}
			}
		}
	})
}
