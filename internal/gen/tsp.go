package gen

import (
	"sparseart/internal/psort"
	"sparseart/internal/tensor"
)

// generateTSP emits the tridiagonal band pattern: a cell is occupied
// when some adjacent dimension pair lies within the band half-width k.
// Rather than testing every cell, the generator walks the (d-1)-prefix
// space: a prefix already inside the band contributes its whole last-
// dimension row, otherwise only the last pair (c_{d-2}, c_{d-1}) can put
// cells in the band, which pins the last coordinate to [c_{d-2}-k,
// c_{d-2}+k]. Output is in row-major order.
func generateTSP(cfg Config) *tensor.Coords {
	shape := cfg.Shape
	d := shape.Dims()
	k := cfg.BandHalfWidth
	last := shape[d-1]
	workers := psort.Workers(cfg.Workers)
	return slabConcat(shape, workers, func(i0, i1 uint64, out *tensor.Coords) {
		p := make([]uint64, d)
		var walk func(dim int, inBand bool)
		walk = func(dim int, inBand bool) {
			if dim == d-1 {
				if inBand {
					for j := uint64(0); j < last; j++ {
						p[d-1] = j
						out.Append(p...)
					}
					return
				}
				prev := p[d-2]
				lo := uint64(0)
				if prev > k {
					lo = prev - k
				}
				hi := prev + k
				if hi >= last {
					hi = last - 1
				}
				for j := lo; j <= hi; j++ {
					p[d-1] = j
					out.Append(p...)
				}
				return
			}
			for c := uint64(0); c < shape[dim]; c++ {
				p[dim] = c
				next := inBand
				if !next && dim > 0 {
					next = within(p[dim-1], c, k)
				}
				walk(dim+1, next)
			}
		}
		for i := i0; i < i1; i++ {
			p[0] = i
			walk(1, false)
		}
	})
}

// within reports |a − b| <= k without underflow.
func within(a, b, k uint64) bool {
	if a > b {
		return a-b <= k
	}
	return b-a <= k
}
