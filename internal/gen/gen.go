// Package gen produces the three synthetic sparsity patterns of the
// paper's evaluation (§III): the Tridiagonal Sparse Pattern (TSP), the
// General Graph Sparse Pattern (GSP, called CGP in the paper's Table
// II), and the Mixed Sparse Pattern (MSP). Points are emitted in
// row-major order with deterministic values, and generation is
// reproducible from a seed regardless of worker count.
//
// The paper's Table II densities cannot be derived exactly from its
// stated generator constants (see DESIGN.md §1), so the TableIIConfig
// constructors calibrate the free parameters — TSP band half-width and
// MSP cluster density — to land on the reported densities at any scale.
package gen

import (
	"fmt"
	"math"
	"sync"

	"sparseart/internal/tensor"
)

// Pattern identifies a synthetic sparsity pattern.
type Pattern uint8

const (
	// TSP concentrates points along diagonal bands: a cell is occupied
	// when some adjacent dimension pair (c_i, c_i+1) lies within the
	// band half-width.
	TSP Pattern = iota + 1
	// GSP scatters points uniformly at random (Bernoulli per cell),
	// the adjacency-matrix pattern of general graphs.
	GSP
	// MSP overlays a denser contiguous cluster block — the LCLS-II
	// style region starting at (m/3, …) with size (m/3, …) — on a
	// sparse random background.
	MSP
)

// String returns the paper's abbreviation.
func (p Pattern) String() string {
	switch p {
	case TSP:
		return "TSP"
	case GSP:
		return "GSP"
	case MSP:
		return "MSP"
	}
	return fmt.Sprintf("Pattern(%d)", uint8(p))
}

// ParsePattern resolves a pattern abbreviation.
func ParsePattern(s string) (Pattern, error) {
	switch s {
	case "TSP", "tsp":
		return TSP, nil
	case "GSP", "gsp", "CGP", "cgp":
		return GSP, nil
	case "MSP", "msp":
		return MSP, nil
	}
	return 0, fmt.Errorf("gen: unknown pattern %q", s)
}

// Patterns returns all three patterns in the paper's column order.
func Patterns() []Pattern { return []Pattern{TSP, GSP, MSP} }

// Config parameterizes one dataset.
type Config struct {
	Pattern Pattern
	Shape   tensor.Shape
	Seed    uint64
	// Workers is the generation parallelism; < 1 means all cores. The
	// output is identical for any value.
	Workers int

	// BandHalfWidth k makes TSP occupy cells where |c_i − c_{i+1}| <= k
	// for some adjacent dimension pair.
	BandHalfWidth uint64

	// Prob is the per-cell occupancy probability of GSP and of the MSP
	// background.
	Prob float64

	// ClusterStart/ClusterSize bound the MSP cluster block;
	// ClusterProb is the additional occupancy probability inside it.
	ClusterStart, ClusterSize []uint64
	ClusterProb               float64
}

func (c Config) validate() error {
	if err := c.Shape.Validate(); err != nil {
		return err
	}
	if _, ok := c.Shape.Volume(); !ok {
		return fmt.Errorf("gen: %w: shape %v", tensor.ErrOverflow, c.Shape)
	}
	switch c.Pattern {
	case TSP:
		if c.Shape.Dims() < 2 {
			return fmt.Errorf("gen: TSP needs at least 2 dimensions")
		}
	case GSP:
		if c.Prob < 0 || c.Prob > 1 {
			return fmt.Errorf("gen: GSP probability %v outside [0,1]", c.Prob)
		}
	case MSP:
		if c.Prob < 0 || c.Prob > 1 || c.ClusterProb < 0 || c.ClusterProb > 1 {
			return fmt.Errorf("gen: MSP probabilities outside [0,1]")
		}
		if len(c.ClusterStart) != c.Shape.Dims() || len(c.ClusterSize) != c.Shape.Dims() {
			return fmt.Errorf("gen: MSP cluster rank mismatch with shape %v", c.Shape)
		}
		if _, err := tensor.NewRegion(c.Shape, c.ClusterStart, c.ClusterSize); err != nil {
			return err
		}
	default:
		return fmt.Errorf("gen: unknown pattern %v", c.Pattern)
	}
	return nil
}

// ValueAt is the deterministic value assigned to every generated point,
// so read-back can be verified without retaining the dataset.
func ValueAt(p []uint64) float64 {
	var h uint64 = 0x9E3779B97F4A7C15
	for _, c := range p {
		h ^= c + 0x9E3779B97F4A7C15 + (h << 6) + (h >> 2)
	}
	return float64(h%100000) + 0.25
}

// Dataset is a generated sparse tensor.
type Dataset struct {
	Config Config
	Coords *tensor.Coords
	Values []float64
}

// NNZ returns the point count.
func (d *Dataset) NNZ() int { return d.Coords.Len() }

// Density returns the occupancy fraction.
func (d *Dataset) Density() float64 {
	vol, _ := d.Config.Shape.Volume()
	if vol == 0 {
		return 0
	}
	return float64(d.NNZ()) / float64(vol)
}

// Generate produces the dataset for cfg.
func Generate(cfg Config) (*Dataset, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	var coords *tensor.Coords
	switch cfg.Pattern {
	case TSP:
		coords = generateTSP(cfg)
	case GSP, MSP:
		coords = generateBernoulli(cfg)
	}
	vals := make([]float64, coords.Len())
	for i := range vals {
		vals[i] = ValueAt(coords.At(i))
	}
	return &Dataset{Config: cfg, Coords: coords, Values: vals}, nil
}

// slabConcat runs emit over first-dimension slabs in parallel and
// concatenates the per-slab buffers in order, preserving the row-major
// output order of a serial run.
func slabConcat(shape tensor.Shape, workers int, emit func(i0, i1 uint64, out *tensor.Coords)) *tensor.Coords {
	m0 := shape[0]
	if workers < 1 {
		workers = 1 // callers pass psort.Workers-normalized counts when parallel
	}
	if uint64(workers) > m0 {
		workers = int(m0)
	}
	parts := make([]*tensor.Coords, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		i0 := uint64(w) * m0 / uint64(workers)
		i1 := uint64(w+1) * m0 / uint64(workers)
		parts[w] = tensor.NewCoords(shape.Dims(), 0)
		go func(i0, i1 uint64, out *tensor.Coords) {
			defer wg.Done()
			emit(i0, i1, out)
		}(i0, i1, parts[w])
	}
	wg.Wait()
	total := 0
	for _, p := range parts {
		total += p.Len()
	}
	all := tensor.NewCoords(shape.Dims(), total)
	for _, p := range parts {
		all.AppendFlat(p.Flat())
	}
	return all
}

// Scale selects the benchmark problem sizes.
type Scale uint8

const (
	// Small is the default test/bench scale (1024², 128³, 32⁴).
	Small Scale = iota
	// Medium is an intermediate scale (2048², 256³, 64⁴).
	Medium
	// Paper is the paper's scale (8192², 512³, 128⁴).
	Paper
)

// String names the scale.
func (s Scale) String() string {
	switch s {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Paper:
		return "paper"
	}
	return fmt.Sprintf("Scale(%d)", uint8(s))
}

// ParseScale resolves a scale name.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "small":
		return Small, nil
	case "medium":
		return Medium, nil
	case "paper":
		return Paper, nil
	}
	return 0, fmt.Errorf("gen: unknown scale %q", s)
}

// ShapeFor returns the cubic benchmark shape for a dimensionality at a
// scale; dims must be 2, 3, or 4.
func ShapeFor(dims int, scale Scale) (tensor.Shape, error) {
	extents := map[Scale]map[int]uint64{
		Small:  {2: 1024, 3: 128, 4: 32},
		Medium: {2: 2048, 3: 256, 4: 64},
		Paper:  {2: 8192, 3: 512, 4: 128},
	}
	m, ok := extents[scale][dims]
	if !ok {
		return nil, fmt.Errorf("gen: no benchmark shape for %d dims at scale %v", dims, scale)
	}
	s := make(tensor.Shape, dims)
	for i := range s {
		s[i] = m
	}
	return s, nil
}

// tableIIDensity is the density the paper reports for each pattern and
// dimensionality (Table II), the calibration target for the free
// generator parameters.
var tableIIDensity = map[Pattern]map[int]float64{
	TSP: {2: 0.0167, 3: 0.0347, 4: 0.0822},
	GSP: {2: 0.0099, 3: 0.0099, 4: 0.0090},
	MSP: {2: 0.0019, 3: 0.0019, 4: 0.0021},
}

// TableIIDensity returns the paper's reported density for a pattern and
// dimensionality.
func TableIIDensity(p Pattern, dims int) (float64, error) {
	d, ok := tableIIDensity[p][dims]
	if !ok {
		return 0, fmt.Errorf("gen: Table II has no %v at %d dims", p, dims)
	}
	return d, nil
}

// TableIIConfig returns the generator configuration for one cell of the
// paper's Table II at the requested scale, with free parameters
// calibrated so the density matches the paper's figure.
func TableIIConfig(p Pattern, dims int, scale Scale, seed uint64) (Config, error) {
	shape, err := ShapeFor(dims, scale)
	if err != nil {
		return Config{}, err
	}
	target, err := TableIIDensity(p, dims)
	if err != nil {
		return Config{}, err
	}
	cfg := Config{Pattern: p, Shape: shape, Seed: seed}
	m := float64(shape[0])
	switch p {
	case TSP:
		// A band of half-width k covers a fraction f1 ≈ (2k+1)/m per
		// adjacent dimension pair; the union over the d-1 pairs gives
		// 1-(1-f1)^(d-1). Invert for k.
		f1 := 1 - math.Pow(1-target, 1/float64(dims-1))
		k := math.Round((f1*m - 1) / 2)
		if k < 0 {
			k = 0
		}
		cfg.BandHalfWidth = uint64(k)
	case GSP:
		cfg.Prob = target
	case MSP:
		// Background probability is the paper's stated 0.001 (the
		// 0.999 threshold); the cluster block at (m/3,…) size (m/3,…)
		// carries the rest of the target density.
		cfg.Prob = 0.001
		cfg.ClusterStart = make([]uint64, dims)
		cfg.ClusterSize = make([]uint64, dims)
		clusterFrac := 1.0
		for i := 0; i < dims; i++ {
			cfg.ClusterStart[i] = shape[i] / 3
			cfg.ClusterSize[i] = shape[i] / 3
			clusterFrac *= float64(cfg.ClusterSize[i]) / float64(shape[i])
		}
		q := (target - cfg.Prob) / clusterFrac
		if q < 0 {
			q = 0
		}
		if q > 1 {
			q = 1
		}
		cfg.ClusterProb = q
	}
	return cfg, nil
}

// ReadRegionFor returns the paper's read-benchmark window for a shape:
// start (m/2, …), size (m/10, …), clamped to at least one cell per
// dimension.
func ReadRegionFor(shape tensor.Shape) (tensor.Region, error) {
	start := make([]uint64, len(shape))
	size := make([]uint64, len(shape))
	for i, m := range shape {
		start[i] = m / 2
		size[i] = m / 10
		if size[i] == 0 {
			size[i] = 1
		}
	}
	return tensor.NewRegion(shape, start, size)
}
