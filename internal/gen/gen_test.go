package gen

import (
	"math"
	"testing"

	"sparseart/internal/tensor"
)

func mustGenerate(t *testing.T, cfg Config) *Dataset {
	t.Helper()
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestPatternStringsAndParse(t *testing.T) {
	for _, p := range Patterns() {
		got, err := ParsePattern(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePattern(%q) = %v, %v", p.String(), got, err)
		}
	}
	// The paper's Table II calls GSP "CGP"; both must parse.
	if p, err := ParsePattern("CGP"); err != nil || p != GSP {
		t.Errorf("ParsePattern(CGP) = %v, %v", p, err)
	}
	if _, err := ParsePattern("XYZ"); err == nil {
		t.Error("unknown pattern accepted")
	}
}

func TestScaleStringsAndParse(t *testing.T) {
	for _, s := range []Scale{Small, Medium, Paper} {
		got, err := ParseScale(s.String())
		if err != nil || got != s {
			t.Errorf("ParseScale(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseScale("giant"); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestShapeFor(t *testing.T) {
	s, err := ShapeFor(2, Paper)
	if err != nil || !s.Equal(tensor.Shape{8192, 8192}) {
		t.Fatalf("ShapeFor(2, Paper) = %v, %v", s, err)
	}
	s, err = ShapeFor(4, Small)
	if err != nil || !s.Equal(tensor.Shape{32, 32, 32, 32}) {
		t.Fatalf("ShapeFor(4, Small) = %v, %v", s, err)
	}
	if _, err := ShapeFor(5, Small); err == nil {
		t.Error("5 dims accepted")
	}
}

func TestValidation(t *testing.T) {
	good, err := TableIIConfig(GSP, 3, Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Prob = 1.5
	if _, err := Generate(bad); err == nil {
		t.Error("probability > 1 accepted")
	}
	bad = good
	bad.Shape = tensor.Shape{0, 4}
	if _, err := Generate(bad); err == nil {
		t.Error("invalid shape accepted")
	}
	bad = good
	bad.Pattern = Pattern(42)
	if _, err := Generate(bad); err == nil {
		t.Error("unknown pattern accepted")
	}
	tsp1d := Config{Pattern: TSP, Shape: tensor.Shape{64}}
	if _, err := Generate(tsp1d); err == nil {
		t.Error("1D TSP accepted")
	}
	msp := Config{Pattern: MSP, Shape: tensor.Shape{9, 9}, Prob: 0.1,
		ClusterProb: 0.5, ClusterStart: []uint64{3}, ClusterSize: []uint64{3}}
	if _, err := Generate(msp); err == nil {
		t.Error("MSP cluster rank mismatch accepted")
	}
}

// TestTableIIDensityCalibration: the calibrated configs must land near
// the paper's densities at the paper's own scale (checked at small
// scale here against the small-scale analytic expectation, and at
// paper scale for the cheap patterns).
func TestTableIIDensityCalibration(t *testing.T) {
	// At small scale the integer rounding of the TSP band width skews
	// densities; allow a generous band. GSP and MSP are probabilistic
	// and land close everywhere.
	for _, c := range []struct {
		p    Pattern
		dims int
		tol  float64 // relative tolerance
	}{
		{TSP, 2, 0.25}, {TSP, 3, 0.5}, {TSP, 4, 0.35},
		{GSP, 2, 0.1}, {GSP, 3, 0.1}, {GSP, 4, 0.15},
		{MSP, 2, 0.2}, {MSP, 3, 0.2}, {MSP, 4, 0.35},
	} {
		cfg, err := TableIIConfig(c.p, c.dims, Small, 42)
		if err != nil {
			t.Fatal(err)
		}
		ds := mustGenerate(t, cfg)
		want, _ := TableIIDensity(c.p, c.dims)
		got := ds.Density()
		if math.Abs(got-want)/want > c.tol {
			t.Errorf("%v %dD: density %.4f%%, Table II %.4f%% (tol %.0f%%)",
				c.p, c.dims, 100*got, 100*want, 100*c.tol)
		}
	}
}

// TestTSPPaperScaleBandWidth: at the paper's scale the calibration must
// recover the band the paper describes — half-width 4 (a band of 9
// diagonals) for the 3D case.
func TestTSPPaperScaleBandWidth(t *testing.T) {
	cfg, err := TableIIConfig(TSP, 3, Paper, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.BandHalfWidth != 4 {
		t.Fatalf("3D paper-scale band half-width = %d, want 4", cfg.BandHalfWidth)
	}
	cfg2, err := TableIIConfig(TSP, 2, Paper, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg2.BandHalfWidth < 60 || cfg2.BandHalfWidth > 75 {
		t.Fatalf("2D paper-scale band half-width = %d, want ~68", cfg2.BandHalfWidth)
	}
}

func TestRowMajorOrderAndInShape(t *testing.T) {
	for _, p := range Patterns() {
		cfg, err := TableIIConfig(p, 3, Small, 5)
		if err != nil {
			t.Fatal(err)
		}
		ds := mustGenerate(t, cfg)
		lin, err := tensor.NewLinearizer(cfg.Shape, tensor.RowMajor)
		if err != nil {
			t.Fatal(err)
		}
		var prev uint64
		for i := 0; i < ds.Coords.Len(); i++ {
			pt := ds.Coords.At(i)
			if !cfg.Shape.Contains(pt) {
				t.Fatalf("%v: point %v outside shape", p, pt)
			}
			addr := lin.Linearize(pt)
			if i > 0 && addr <= prev {
				t.Fatalf("%v: output not strictly increasing at %d (%d after %d)", p, i, addr, prev)
			}
			prev = addr
		}
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	for _, p := range Patterns() {
		cfg, err := TableIIConfig(p, 3, Small, 99)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Workers = 1
		serial := mustGenerate(t, cfg)
		for _, workers := range []int{2, 5, 16} {
			cfg.Workers = workers
			parallel := mustGenerate(t, cfg)
			if !serial.Coords.Equal(parallel.Coords) {
				t.Fatalf("%v: %d workers produced different points than serial", p, workers)
			}
		}
	}
}

func TestSeedChangesRandomPatterns(t *testing.T) {
	for _, p := range []Pattern{GSP, MSP} {
		a, err := TableIIConfig(p, 2, Small, 1)
		if err != nil {
			t.Fatal(err)
		}
		b := a
		b.Seed = 2
		if mustGenerate(t, a).Coords.Equal(mustGenerate(t, b).Coords) {
			t.Errorf("%v: different seeds gave identical datasets", p)
		}
	}
}

func TestValuesMatchValueAt(t *testing.T) {
	cfg, err := TableIIConfig(MSP, 2, Small, 3)
	if err != nil {
		t.Fatal(err)
	}
	ds := mustGenerate(t, cfg)
	for i := 0; i < ds.Coords.Len(); i++ {
		if ds.Values[i] != ValueAt(ds.Coords.At(i)) {
			t.Fatalf("value %d does not match ValueAt", i)
		}
	}
}

// TestTSPMatchesBruteForce checks the optimized band enumerator against
// a full predicate scan on a small tensor.
func TestTSPMatchesBruteForce(t *testing.T) {
	shape := tensor.Shape{9, 7, 8}
	k := uint64(1)
	cfg := Config{Pattern: TSP, Shape: shape, BandHalfWidth: k, Workers: 3}
	ds := mustGenerate(t, cfg)
	got := map[[3]uint64]bool{}
	for i := 0; i < ds.Coords.Len(); i++ {
		p := ds.Coords.At(i)
		key := [3]uint64{p[0], p[1], p[2]}
		if got[key] {
			t.Fatalf("duplicate point %v", p)
		}
		got[key] = true
	}
	count := 0
	for a := uint64(0); a < shape[0]; a++ {
		for b := uint64(0); b < shape[1]; b++ {
			for c := uint64(0); c < shape[2]; c++ {
				inBand := within(a, b, k) || within(b, c, k)
				if inBand != got[[3]uint64{a, b, c}] {
					t.Fatalf("cell (%d,%d,%d): generator %v, predicate %v",
						a, b, c, got[[3]uint64{a, b, c}], inBand)
				}
				if inBand {
					count++
				}
			}
		}
	}
	if count != ds.NNZ() {
		t.Fatalf("generator emitted %d, predicate counts %d", ds.NNZ(), count)
	}
}

func TestMSPClusterIsDenser(t *testing.T) {
	cfg, err := TableIIConfig(MSP, 2, Small, 11)
	if err != nil {
		t.Fatal(err)
	}
	ds := mustGenerate(t, cfg)
	cluster, _ := tensor.NewRegion(cfg.Shape, cfg.ClusterStart, cfg.ClusterSize)
	in, out := 0, 0
	for i := 0; i < ds.Coords.Len(); i++ {
		if cluster.Contains(ds.Coords.At(i)) {
			in++
		} else {
			out++
		}
	}
	cvol, _ := cluster.Volume()
	tvol, _ := cfg.Shape.Volume()
	inDensity := float64(in) / float64(cvol)
	outDensity := float64(out) / float64(tvol-cvol)
	if inDensity < 3*outDensity {
		t.Fatalf("cluster density %.5f not clearly above background %.5f", inDensity, outDensity)
	}
}

func TestGSPDensityTracksProb(t *testing.T) {
	cfg := Config{Pattern: GSP, Shape: tensor.Shape{256, 256}, Prob: 0.05, Seed: 4}
	ds := mustGenerate(t, cfg)
	got := ds.Density()
	if math.Abs(got-0.05) > 0.005 {
		t.Fatalf("density %.4f, want ~0.05", got)
	}
	// Prob 0 and 1 are exact.
	cfg.Prob = 0
	if mustGenerate(t, cfg).NNZ() != 0 {
		t.Fatal("p=0 produced points")
	}
	cfg.Prob = 1
	cfg.Shape = tensor.Shape{8, 8}
	if mustGenerate(t, cfg).NNZ() != 64 {
		t.Fatal("p=1 did not fill the tensor")
	}
}

func TestGeometricSkipStatistics(t *testing.T) {
	r := derive(123, 0)
	n := uint64(200000)
	p := 0.01
	count := 0
	last := int64(-1)
	geometricSkip(r, p, n, func(pos uint64) {
		if int64(pos) <= last {
			t.Fatalf("positions not strictly increasing: %d after %d", pos, last)
		}
		last = int64(pos)
		count++
	})
	want := float64(n) * p
	if math.Abs(float64(count)-want) > want*0.15 {
		t.Fatalf("emitted %d positions, want ~%.0f", count, want)
	}
}

func TestGeometricSkipEdges(t *testing.T) {
	r := derive(1, 1)
	called := 0
	geometricSkip(r, 0.5, 0, func(uint64) { called++ })
	if called != 0 {
		t.Fatal("n=0 emitted positions")
	}
	geometricSkip(r, -1, 100, func(uint64) { called++ })
	if called != 0 {
		t.Fatal("p<0 emitted positions")
	}
	geometricSkip(r, 2, 3, func(uint64) { called++ })
	if called != 3 {
		t.Fatalf("p>=1 emitted %d of 3", called)
	}
}

func TestReadRegionFor(t *testing.T) {
	r, err := ReadRegionFor(tensor.Shape{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if r.Start[0] != 50 || r.Size[0] != 10 {
		t.Fatalf("region = %+v", r)
	}
	// Tiny extents clamp the size to one cell.
	r, err = ReadRegionFor(tensor.Shape{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.Size[0] != 1 {
		t.Fatalf("clamped region = %+v", r)
	}
}

func TestTableIIDensityLookup(t *testing.T) {
	if _, err := TableIIDensity(TSP, 5); err == nil {
		t.Error("missing cell accepted")
	}
	d, err := TableIIDensity(MSP, 4)
	if err != nil || d != 0.0021 {
		t.Errorf("TableIIDensity(MSP,4) = %v, %v", d, err)
	}
}

func TestDatasetAccessors(t *testing.T) {
	cfg, err := TableIIConfig(GSP, 2, Small, 8)
	if err != nil {
		t.Fatal(err)
	}
	ds := mustGenerate(t, cfg)
	if ds.NNZ() != ds.Coords.Len() || ds.NNZ() != len(ds.Values) {
		t.Fatal("NNZ inconsistent")
	}
	if ds.Density() <= 0 || ds.Density() > 1 {
		t.Fatalf("density = %v", ds.Density())
	}
}
