package linalg

import (
	"fmt"
	"math"

	"sparseart/internal/core"
	"sparseart/internal/tensor"
)

// This file implements CP-ALS — canonical polyadic decomposition by
// alternating least squares — for 3-way sparse tensors, the application
// the paper's citations anchor sparse-tensor storage to (SPLATT,
// GigaTensor; the MTTKRP kernel dominates its runtime). The tensor is
// approximated as a sum of rank-1 terms
//
//	T[i,j,k] ≈ Σ_r λ_r · A[i,r] · B[j,r] · C[k,r]
//
// and each factor is updated in turn by
//
//	A ← MTTKRP_0(T; B, C) · (BᵀB ∘ CᵀC)⁺
//
// where ∘ is the elementwise (Hadamard) product and ⁺ a solve against
// the R×R Gram matrix. All tensor access goes through the storage
// organization's reader.

// CPResult holds a rank-R decomposition of a 3-way tensor.
type CPResult struct {
	// Factors are the mode factor matrices A, B, C with unit-norm
	// columns.
	Factors [3]*Dense
	// Lambdas are the per-component weights.
	Lambdas []float64
	// Fit is 1 - ||T - T̂||/||T||, in (−∞, 1]; 1 is exact.
	Fit float64
	// Iterations actually run.
	Iterations int
}

// CPALSOptions tunes the decomposition.
type CPALSOptions struct {
	Rank    int
	MaxIter int     // default 50
	Tol     float64 // stop when fit improves less than this; default 1e-6
	Seed    uint64  // factor initialization
}

// CPALS decomposes a 3-way sparse tensor.
func (t *Tensor) CPALS(opts CPALSOptions) (*CPResult, error) {
	if t.Shape.Dims() != 3 {
		return nil, fmt.Errorf("linalg: CPALS implemented for 3-way tensors, got %d-way", t.Shape.Dims())
	}
	rank := opts.Rank
	if rank < 1 {
		return nil, fmt.Errorf("linalg: rank %d", rank)
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 50
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-6
	}

	// Deterministic pseudo-random initialization.
	state := opts.Seed*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
	next := func() float64 {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		return float64(z>>11)/(1<<53) + 0.1 // keep away from zero
	}
	var factors [3]*Dense
	for m := 0; m < 3; m++ {
		f := NewDense(int(t.Shape[m]), rank)
		for i := range f.Data {
			f.Data[i] = next()
		}
		factors[m] = f
	}

	var normT float64
	for _, v := range t.Values {
		normT += v * v
	}
	normT = math.Sqrt(normT)
	if normT == 0 {
		return nil, fmt.Errorf("linalg: CPALS of an all-zero tensor")
	}

	lambdas := make([]float64, rank)
	res := &CPResult{Factors: factors, Lambdas: lambdas}
	prevFit := math.Inf(-1)
	for iter := 0; iter < maxIter; iter++ {
		res.Iterations = iter + 1
		var mttkrpLast *Dense
		for mode := 0; mode < 3; mode++ {
			others := [][2]int{{1, 2}, {0, 2}, {0, 1}}[mode]
			m, err := t.MTTKRP(mode, [2]*Dense{factors[others[0]], factors[others[1]]})
			if err != nil {
				return nil, err
			}
			// Gram = (FᵀF of one other factor) ∘ (of the second).
			gram := hadamard(gramMatrix(factors[others[0]]), gramMatrix(factors[others[1]]))
			updated, err := solveGram(gram, m)
			if err != nil {
				return nil, err
			}
			// Normalize columns into lambdas.
			for r := 0; r < rank; r++ {
				var norm float64
				for i := 0; i < updated.Rows; i++ {
					norm += updated.At(i, r) * updated.At(i, r)
				}
				norm = math.Sqrt(norm)
				lambdas[r] = norm
				if norm > 0 {
					for i := 0; i < updated.Rows; i++ {
						updated.Set(i, r, updated.At(i, r)/norm)
					}
				}
			}
			factors[mode] = updated
			if mode == 2 {
				mttkrpLast = m
			}
		}
		res.Factors = factors

		// Fit via the standard identity:
		// ||T-T̂||² = ||T||² - 2<T, T̂> + ||T̂||², with
		// <T, T̂> = Σ_r λ_r Σ_i M[i,r]·C[i,r] (M the last MTTKRP) and
		// ||T̂||² = λᵀ (AᵀA ∘ BᵀB ∘ CᵀC) λ.
		inner := 0.0
		C := factors[2]
		for r := 0; r < rank; r++ {
			var s float64
			for i := 0; i < C.Rows; i++ {
				s += mttkrpLast.At(i, r) * C.At(i, r)
			}
			inner += lambdas[r] * s
		}
		gramAll := hadamard(hadamard(gramMatrix(factors[0]), gramMatrix(factors[1])), gramMatrix(factors[2]))
		var normHatSq float64
		for r := 0; r < rank; r++ {
			for s := 0; s < rank; s++ {
				normHatSq += lambdas[r] * lambdas[s] * gramAll.At(r, s)
			}
		}
		residSq := normT*normT - 2*inner + normHatSq
		if residSq < 0 {
			residSq = 0
		}
		res.Fit = 1 - math.Sqrt(residSq)/normT
		if res.Fit-prevFit < tol && iter > 0 {
			break
		}
		prevFit = res.Fit
	}
	res.Lambdas = lambdas
	return res, nil
}

// maxImputeVolume bounds the dense working set of CPALSImpute.
const maxImputeVolume = 1 << 24

// CPALSImpute performs CP *completion* by expectation-maximization:
// plain CPALS treats unobserved cells as zeros, which is right for
// physically-sparse data but wrong for partially-observed data (a
// ratings tensor). Here the unobserved cells are imputed from the
// current model, the decomposition is refit on the densified tensor,
// and the cycle repeats. The tensor's full volume must fit in memory
// (<= 2^24 cells); observed cells always keep their true values.
func (t *Tensor) CPALSImpute(opts CPALSOptions, outer int) (*CPResult, error) {
	if t.Shape.Dims() != 3 {
		return nil, fmt.Errorf("linalg: CPALSImpute implemented for 3-way tensors, got %d-way", t.Shape.Dims())
	}
	if outer < 1 {
		return nil, fmt.Errorf("linalg: outer iterations %d", outer)
	}
	vol, ok := t.Shape.Volume()
	if !ok || vol > maxImputeVolume {
		return nil, fmt.Errorf("linalg: volume %d too large for dense imputation", vol)
	}
	it, okIt := t.Reader.(core.Iterator)
	if !okIt {
		return nil, fmt.Errorf("linalg: reader cannot iterate")
	}
	lin, err := tensor.NewLinearizer(t.Shape, tensor.RowMajor)
	if err != nil {
		return nil, err
	}

	// Dense working copy, unobserved cells seeded with the observed
	// mean.
	dense := make([]float64, vol)
	observed := make([]bool, vol)
	var mean float64
	it.Each(func(p []uint64, slot int) bool {
		addr := lin.Linearize(p)
		dense[addr] = t.Values[slot]
		observed[addr] = true
		mean += t.Values[slot]
		return true
	})
	if t.Reader.NNZ() == 0 {
		return nil, fmt.Errorf("linalg: CPALSImpute of an empty tensor")
	}
	mean /= float64(t.Reader.NNZ())
	for a := range dense {
		if !observed[a] {
			dense[a] = mean
		}
	}

	allCoords := tensor.NewCoords(3, int(vol))
	p := make([]uint64, 3)
	for a := uint64(0); a < vol; a++ {
		lin.Delinearize(a, p)
		allCoords.Append(p...)
	}

	var res *CPResult
	for round := 0; round < outer; round++ {
		full, err := TensorFrom(core.COO, t.Shape, allCoords, dense)
		if err != nil {
			return nil, err
		}
		res, err = full.CPALS(opts)
		if err != nil {
			return nil, err
		}
		// E-step: re-impute the unobserved cells from the new model.
		for a := uint64(0); a < vol; a++ {
			if !observed[a] {
				lin.Delinearize(a, p)
				dense[a] = res.Reconstruct(p)
			}
		}
	}
	return res, nil
}

// Reconstruct evaluates the CP model at a point.
func (r *CPResult) Reconstruct(p []uint64) float64 {
	var v float64
	for c := 0; c < len(r.Lambdas); c++ {
		v += r.Lambdas[c] *
			r.Factors[0].At(int(p[0]), c) *
			r.Factors[1].At(int(p[1]), c) *
			r.Factors[2].At(int(p[2]), c)
	}
	return v
}

// gramMatrix computes FᵀF (R×R).
func gramMatrix(f *Dense) *Dense {
	g := NewDense(f.Cols, f.Cols)
	for i := 0; i < f.Rows; i++ {
		row := f.Data[i*f.Cols : (i+1)*f.Cols]
		for r := 0; r < f.Cols; r++ {
			for s := r; s < f.Cols; s++ {
				g.Data[r*f.Cols+s] += row[r] * row[s]
			}
		}
	}
	for r := 0; r < f.Cols; r++ {
		for s := 0; s < r; s++ {
			g.Data[r*f.Cols+s] = g.Data[s*f.Cols+r]
		}
	}
	return g
}

// hadamard multiplies two equally-sized dense matrices elementwise.
func hadamard(a, b *Dense) *Dense {
	out := NewDense(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// solveGram solves X·G = M for X (i.e. X = M·G⁻¹) via Cholesky with a
// small ridge for rank-deficient Grams.
func solveGram(g, m *Dense) (*Dense, error) {
	n := g.Rows
	// Ridge regularization keeps the factorization alive when factors
	// collide.
	ridge := 1e-12
	var trace float64
	for i := 0; i < n; i++ {
		trace += g.At(i, i)
	}
	if trace > 0 {
		ridge *= trace / float64(n)
	}
	L := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := g.At(i, j)
			if i == j {
				sum += ridge
			}
			for k := 0; k < j; k++ {
				sum -= L.At(i, k) * L.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("linalg: Gram matrix not positive definite")
				}
				L.Set(i, i, math.Sqrt(sum))
			} else {
				L.Set(i, j, sum/L.At(j, j))
			}
		}
	}
	// Solve G xᵀ = mᵀ row by row: L y = b, Lᵀ x = y.
	out := NewDense(m.Rows, m.Cols)
	y := make([]float64, n)
	for row := 0; row < m.Rows; row++ {
		for i := 0; i < n; i++ {
			sum := m.At(row, i)
			for k := 0; k < i; k++ {
				sum -= L.At(i, k) * y[k]
			}
			y[i] = sum / L.At(i, i)
		}
		for i := n - 1; i >= 0; i-- {
			sum := y[i]
			for k := i + 1; k < n; k++ {
				sum -= L.At(k, i) * out.At(row, k)
			}
			out.Set(row, i, sum/L.At(i, i))
		}
	}
	return out, nil
}
