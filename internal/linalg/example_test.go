package linalg_test

import (
	"fmt"
	"log"

	"sparseart/internal/core"
	_ "sparseart/internal/core/all"
	"sparseart/internal/linalg"
	"sparseart/internal/tensor"
)

// ExampleMatrix_SpMV multiplies a sparse matrix, stored as a CSF
// payload, by a dense vector.
func ExampleMatrix_SpMV() {
	shape := tensor.Shape{3, 3}
	c := tensor.NewCoords(2, 0)
	c.Append(0, 0)
	c.Append(1, 2)
	c.Append(2, 1)
	m, err := linalg.MatrixFrom(core.CSF, shape, c, []float64{2, 3, 4})
	if err != nil {
		log.Fatal(err)
	}
	y, err := m.SpMV([]float64{1, 10, 100})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(y)
	// Output:
	// [2 300 40]
}

// ExampleTensor_TTV contracts a 3-way tensor with a vector along its
// last mode.
func ExampleTensor_TTV() {
	shape := tensor.Shape{2, 2, 2}
	c := tensor.NewCoords(3, 0)
	c.Append(0, 0, 0)
	c.Append(0, 0, 1)
	c.Append(1, 1, 1)
	tn, err := linalg.TensorFrom(core.GCSR, shape, c, []float64{1, 2, 3})
	if err != nil {
		log.Fatal(err)
	}
	out, outShape, err := tn.TTV(2, []float64{10, 100})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(outShape, out)
	// Output:
	// 2x2 [210 0 0 300]
}

// ExampleCG solves a tridiagonal SPD system through a stored operator.
func ExampleCG() {
	shape := tensor.Shape{3, 3}
	c := tensor.NewCoords(2, 0)
	vals := []float64{}
	add := func(i, j uint64, v float64) { c.Append(i, j); vals = append(vals, v) }
	add(0, 0, 2)
	add(0, 1, -1)
	add(1, 0, -1)
	add(1, 1, 2)
	add(1, 2, -1)
	add(2, 1, -1)
	add(2, 2, 2)
	m, err := linalg.MatrixFrom(core.Linear, shape, c, vals)
	if err != nil {
		log.Fatal(err)
	}
	res, err := linalg.CG(m.SpMV, []float64{0, 2, 0}, 10, 1e-12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("x = [%.0f %.0f %.0f], converged=%v\n", res.X[0], res.X[1], res.X[2], res.Converged)
	// Output:
	// x = [1 2 1], converged=true
}
