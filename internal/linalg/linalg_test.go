package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sparseart/internal/core"
	_ "sparseart/internal/core/all"
	"sparseart/internal/tensor"
)

// buildAll packages the same dataset in every organization and returns
// (reader, packed values) per kind.
func buildAll(t *testing.T, shape tensor.Shape, c *tensor.Coords, vals []float64) map[core.Kind]struct {
	r core.Reader
	v []float64
} {
	t.Helper()
	out := map[core.Kind]struct {
		r core.Reader
		v []float64
	}{}
	for _, kind := range core.PaperKinds() {
		f, err := core.Get(kind)
		if err != nil {
			t.Fatal(err)
		}
		built, err := f.Build(c, shape)
		if err != nil {
			t.Fatal(err)
		}
		r, err := f.Open(built.Payload, shape)
		if err != nil {
			t.Fatal(err)
		}
		out[kind] = struct {
			r core.Reader
			v []float64
		}{r, tensor.ApplyPermValues(vals, built.Perm)}
	}
	return out
}

func randomSparse(rng *rand.Rand, shape tensor.Shape, n int) (*tensor.Coords, []float64) {
	lin, _ := tensor.NewLinearizer(shape, tensor.RowMajor)
	vol, _ := shape.Volume()
	seen := map[uint64]bool{}
	c := tensor.NewCoords(shape.Dims(), n)
	var vals []float64
	p := make([]uint64, shape.Dims())
	for len(seen) < n {
		a := uint64(rng.Int63n(int64(vol)))
		if seen[a] {
			continue
		}
		seen[a] = true
		lin.Delinearize(a, p)
		c.Append(p...)
		vals = append(vals, rng.NormFloat64())
	}
	return c, vals
}

// dense materializes the sparse matrix for reference computations.
func dense(shape tensor.Shape, c *tensor.Coords, vals []float64) [][]float64 {
	m := make([][]float64, shape[0])
	for i := range m {
		m[i] = make([]float64, shape[1])
	}
	for i := 0; i < c.Len(); i++ {
		m[c.Get(i, 0)][c.Get(i, 1)] = vals[i]
	}
	return m
}

func TestSpMVMatchesDenseAcrossAllFormats(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shape := tensor.Shape{20, 15}
	c, vals := randomSparse(rng, shape, 60)
	x := make([]float64, shape[1])
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	ref := dense(shape, c, vals)
	want := make([]float64, shape[0])
	for i := range want {
		for j := range x {
			want[i] += ref[i][j] * x[j]
		}
	}
	for kind, built := range buildAll(t, shape, c, vals) {
		m, err := NewMatrix(shape, built.r, built.v)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		got, err := m.SpMV(x)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("%v: y[%d] = %v, want %v", kind, i, got[i], want[i])
			}
		}
	}
}

func TestSpMVTMatchesTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	shape := tensor.Shape{12, 9}
	c, vals := randomSparse(rng, shape, 40)
	x := make([]float64, shape[0])
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	ref := dense(shape, c, vals)
	want := make([]float64, shape[1])
	for j := range want {
		for i := range x {
			want[j] += ref[i][j] * x[i]
		}
	}
	built := buildAll(t, shape, c, vals)[core.GCSC]
	m, err := NewMatrix(shape, built.r, built.v)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.SpMVT(x)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want {
		if math.Abs(got[j]-want[j]) > 1e-9 {
			t.Fatalf("y[%d] = %v, want %v", j, got[j], want[j])
		}
	}
}

func TestMatrixValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	shape := tensor.Shape{4, 4}
	c, vals := randomSparse(rng, shape, 5)
	built := buildAll(t, shape, c, vals)[core.COO]
	if _, err := NewMatrix(tensor.Shape{4, 4, 4}, built.r, built.v); err == nil {
		t.Error("3D matrix accepted")
	}
	if _, err := NewMatrix(shape, built.r, built.v[:2]); err == nil {
		t.Error("value count mismatch accepted")
	}
	m, err := NewMatrix(shape, built.r, built.v)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.SpMV(make([]float64, 3)); err == nil {
		t.Error("wrong x length accepted")
	}
	if _, err := m.SpMVT(make([]float64, 3)); err == nil {
		t.Error("wrong x length accepted (transpose)")
	}
}

func TestTTVMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	shape := tensor.Shape{6, 5, 4}
	c, vals := randomSparse(rng, shape, 40)
	for mode := 0; mode < 3; mode++ {
		v := make([]float64, shape[mode])
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		for kind, built := range buildAll(t, shape, c, vals) {
			tn, err := NewTensor(shape, built.r, built.v)
			if err != nil {
				t.Fatal(err)
			}
			got, outShape, err := tn.TTV(mode, v)
			if err != nil {
				t.Fatalf("%v mode %d: %v", kind, mode, err)
			}
			lin, _ := tensor.NewLinearizer(outShape, tensor.RowMajor)
			want := make([]float64, len(got))
			q := make([]uint64, 2)
			for i := 0; i < c.Len(); i++ {
				p := c.At(i)
				k := 0
				for d, coord := range p {
					if d == mode {
						continue
					}
					q[k] = coord
					k++
				}
				want[lin.Linearize(q)] += vals[i] * v[p[mode]]
			}
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-9 {
					t.Fatalf("%v mode %d: out[%d] = %v, want %v", kind, mode, i, got[i], want[i])
				}
			}
		}
	}
}

func TestTTVValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	shape := tensor.Shape{4, 4, 4}
	c, vals := randomSparse(rng, shape, 5)
	built := buildAll(t, shape, c, vals)[core.CSF]
	tn, err := NewTensor(shape, built.r, built.v)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tn.TTV(3, make([]float64, 4)); err == nil {
		t.Error("bad mode accepted")
	}
	if _, _, err := tn.TTV(0, make([]float64, 3)); err == nil {
		t.Error("wrong vector length accepted")
	}
}

func TestMTTKRPMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	shape := tensor.Shape{5, 6, 7}
	c, vals := randomSparse(rng, shape, 50)
	const rank = 3
	for mode := 0; mode < 3; mode++ {
		others := [][2]int{{1, 2}, {0, 2}, {0, 1}}[mode]
		var factors [2]*Dense
		for fi, m := range others {
			f := NewDense(int(shape[m]), rank)
			for i := range f.Data {
				f.Data[i] = rng.NormFloat64()
			}
			factors[fi] = f
		}
		want := NewDense(int(shape[mode]), rank)
		for i := 0; i < c.Len(); i++ {
			p := c.At(i)
			for r := 0; r < rank; r++ {
				want.Data[int(p[mode])*rank+r] += vals[i] *
					factors[0].At(int(p[others[0]]), r) *
					factors[1].At(int(p[others[1]]), r)
			}
		}
		for kind, built := range buildAll(t, shape, c, vals) {
			tn, err := NewTensor(shape, built.r, built.v)
			if err != nil {
				t.Fatal(err)
			}
			got, err := tn.MTTKRP(mode, factors)
			if err != nil {
				t.Fatalf("%v mode %d: %v", kind, mode, err)
			}
			for i := range want.Data {
				if math.Abs(got.Data[i]-want.Data[i]) > 1e-9 {
					t.Fatalf("%v mode %d: M[%d] = %v, want %v",
						kind, mode, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

func TestMTTKRPValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shape := tensor.Shape{4, 4, 4}
	c, vals := randomSparse(rng, shape, 5)
	built := buildAll(t, shape, c, vals)[core.GCSR]
	tn, err := NewTensor(shape, built.r, built.v)
	if err != nil {
		t.Fatal(err)
	}
	good := [2]*Dense{NewDense(4, 2), NewDense(4, 2)}
	if _, err := tn.MTTKRP(3, good); err == nil {
		t.Error("bad mode accepted")
	}
	if _, err := tn.MTTKRP(0, [2]*Dense{NewDense(4, 2), NewDense(4, 3)}); err == nil {
		t.Error("rank mismatch accepted")
	}
	if _, err := tn.MTTKRP(0, [2]*Dense{NewDense(3, 2), NewDense(4, 2)}); err == nil {
		t.Error("factor extent mismatch accepted")
	}
	shape2 := tensor.Shape{4, 4}
	c2, vals2 := randomSparse(rng, shape2, 4)
	built2 := buildAll(t, shape2, c2, vals2)[core.COO]
	tn2, err := NewTensor(shape2, built2.r, built2.v)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn2.MTTKRP(0, good); err == nil {
		t.Error("2-way MTTKRP accepted")
	}
}

// laplacian1D builds the SPD tridiagonal operator [-1 2 -1] of size n
// in the given organization.
func laplacian1D(t *testing.T, n int, kind core.Kind) *Matrix {
	t.Helper()
	shape := tensor.Shape{uint64(n), uint64(n)}
	c := tensor.NewCoords(2, 0)
	var vals []float64
	for i := 0; i < n; i++ {
		c.Append(uint64(i), uint64(i))
		vals = append(vals, 2)
		if i > 0 {
			c.Append(uint64(i), uint64(i-1))
			vals = append(vals, -1)
		}
		if i < n-1 {
			c.Append(uint64(i), uint64(i+1))
			vals = append(vals, -1)
		}
	}
	f, err := core.Get(kind)
	if err != nil {
		t.Fatal(err)
	}
	built, err := f.Build(c, shape)
	if err != nil {
		t.Fatal(err)
	}
	r, err := f.Open(built.Payload, shape)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMatrix(shape, r, tensor.ApplyPermValues(vals, built.Perm))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCGSolvesLaplacianInEveryFormat(t *testing.T) {
	const n = 50
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	for _, kind := range core.PaperKinds() {
		m := laplacian1D(t, n, kind)
		res, err := CG(m.SpMV, b, 500, 1e-9)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if !res.Converged {
			t.Fatalf("%v: CG did not converge (residual %v after %d iters)",
				kind, res.Residual, res.Iterations)
		}
		// Verify A·x = b directly.
		ax, err := m.SpMV(res.X)
		if err != nil {
			t.Fatal(err)
		}
		for i := range b {
			if math.Abs(ax[i]-b[i]) > 1e-6 {
				t.Fatalf("%v: (A·x)[%d] = %v, want %v", kind, i, ax[i], b[i])
			}
		}
	}
}

func TestCGExactAfterNIterations(t *testing.T) {
	// CG on an n-dim SPD system converges within n iterations in exact
	// arithmetic; allow slack for floating point.
	m := laplacian1D(t, 16, core.CSF)
	b := make([]float64, 16)
	b[0], b[15] = 1, -1
	res, err := CG(m.SpMV, b, 32, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations > 20 {
		t.Fatalf("CG took %d iterations (converged=%v)", res.Iterations, res.Converged)
	}
}

func TestCGValidation(t *testing.T) {
	apply := func(x []float64) ([]float64, error) { return x, nil } // identity
	if _, err := CG(apply, []float64{1}, 0, 1e-9); err == nil {
		t.Error("maxIter 0 accepted")
	}
	bad := func(x []float64) ([]float64, error) { return x[:0], nil }
	if _, err := CG(bad, []float64{1, 2}, 5, 1e-9); err == nil {
		t.Error("wrong operator output length accepted")
	}
	// Identity system solves in one iteration.
	res, err := CG(apply, []float64{3, -4}, 5, 1e-12)
	if err != nil || !res.Converged || math.Abs(res.X[0]-3) > 1e-9 {
		t.Fatalf("identity solve: %+v, %v", res, err)
	}
}

// TestSpMVLinearityQuick property-tests SpMV linearity:
// A(ax + by) = a·Ax + b·Ay.
func TestSpMVLinearityQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	shape := tensor.Shape{10, 10}
	c, vals := randomSparse(rng, shape, 30)
	built := buildAll(t, shape, c, vals)[core.GCSR]
	m, err := NewMatrix(shape, built.r, built.v)
	if err != nil {
		t.Fatal(err)
	}
	f := func(xs, ys [10]int8, a, b int8) bool {
		x := make([]float64, 10)
		y := make([]float64, 10)
		mix := make([]float64, 10)
		for i := range x {
			x[i], y[i] = float64(xs[i]), float64(ys[i])
			mix[i] = float64(a)*x[i] + float64(b)*y[i]
		}
		ax, err1 := m.SpMV(x)
		ay, err2 := m.SpMV(y)
		amix, err3 := m.SpMV(mix)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		for i := range amix {
			want := float64(a)*ax[i] + float64(b)*ay[i]
			if math.Abs(amix[i]-want) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
