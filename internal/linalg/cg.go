package linalg

import (
	"fmt"
	"math"
)

// CGResult reports a conjugate-gradient solve.
type CGResult struct {
	X          []float64
	Iterations int
	Residual   float64 // final ||b - A·x||₂
	Converged  bool
}

// CG solves A·x = b for a symmetric positive-definite operator given as
// a matrix-vector product, stopping when the residual norm falls below
// tol or after maxIter iterations. This is the solver loop of the HPCG
// benchmark the paper cites as a TSP workload, driven entirely through
// a storage organization's reader.
func CG(apply func(x []float64) ([]float64, error), b []float64, maxIter int, tol float64) (*CGResult, error) {
	if maxIter < 1 {
		return nil, fmt.Errorf("linalg: maxIter %d", maxIter)
	}
	n := len(b)
	x := make([]float64, n)
	r := append([]float64(nil), b...) // r = b - A·0
	p := append([]float64(nil), b...)
	rs := dot(r, r)

	res := &CGResult{X: x}
	for res.Iterations = 0; res.Iterations < maxIter; res.Iterations++ {
		if math.Sqrt(rs) <= tol {
			res.Converged = true
			break
		}
		ap, err := apply(p)
		if err != nil {
			return nil, err
		}
		if len(ap) != n {
			return nil, fmt.Errorf("linalg: operator returned %d entries for %d", len(ap), n)
		}
		pap := dot(p, ap)
		if pap == 0 {
			break // breakdown: p in the null space
		}
		alpha := rs / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rsNew := dot(r, r)
		beta := rsNew / rs
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rs = rsNew
	}
	res.Residual = math.Sqrt(rs)
	if res.Residual <= tol {
		res.Converged = true
	}
	return res, nil
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
