package linalg

import (
	"math"
	"testing"

	"sparseart/internal/core"
	_ "sparseart/internal/core/all"
	"sparseart/internal/tensor"
)

// rank2Tensor synthesizes an exactly rank-2 tensor with every cell
// populated — logically dense but carried through the sparse storage
// formats, so CP-ALS must recover the structure exactly. (Dropping
// cells to zero would destroy the low-rank property: an implicit zero
// is a real value in the CP model.)
func rank2Tensor(t *testing.T, kind core.Kind) *Tensor {
	t.Helper()
	a := [][2]float64{}
	for i := 0; i < 12; i++ {
		a = append(a, [2]float64{math.Sin(float64(i)) + 1.2, math.Cos(float64(i)) + 1.2})
	}
	b := [][2]float64{}
	for j := 0; j < 10; j++ {
		b = append(b, [2]float64{float64(j%3) + 0.5, float64(j%5) + 0.25})
	}
	cfac := [][2]float64{}
	for k := 0; k < 8; k++ {
		cfac = append(cfac, [2]float64{float64(k)/4 + 0.3, 1.5 - float64(k)/8})
	}
	coords := tensor.NewCoords(3, 0)
	var vals []float64
	for i := 0; i < 12; i++ {
		for j := 0; j < 10; j++ {
			for k := 0; k < 8; k++ {
				v := a[i][0]*b[j][0]*cfac[k][0] + a[i][1]*b[j][1]*cfac[k][1]
				coords.Append(uint64(i), uint64(j), uint64(k))
				vals = append(vals, v)
			}
		}
	}
	tn, err := TensorFrom(kind, tensor.Shape{12, 10, 8}, coords, vals)
	if err != nil {
		t.Fatal(err)
	}
	return tn
}

func TestCPALSRecoversLowRankStructure(t *testing.T) {
	tn := rank2Tensor(t, core.CSF)
	res, err := tn.CPALS(CPALSOptions{Rank: 2, MaxIter: 200, Tol: 1e-10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit < 0.9999 {
		t.Fatalf("fit = %v after %d iterations", res.Fit, res.Iterations)
	}
	// Factor columns are unit-norm.
	for m, f := range res.Factors {
		for r := 0; r < 2; r++ {
			var norm float64
			for i := 0; i < f.Rows; i++ {
				norm += f.At(i, r) * f.At(i, r)
			}
			if math.Abs(math.Sqrt(norm)-1) > 1e-6 {
				t.Fatalf("factor %d column %d norm %v", m, r, math.Sqrt(norm))
			}
		}
	}
	if len(res.Lambdas) != 2 || res.Lambdas[0] <= 0 {
		t.Fatalf("lambdas = %v", res.Lambdas)
	}
}

func TestCPALSSameAcrossFormats(t *testing.T) {
	// The decomposition depends only on the tensor's contents, so
	// every storage organization must produce the same fit.
	var fits []float64
	for _, kind := range []core.Kind{core.COO, core.GCSR, core.CSF} {
		tn := rank2Tensor(t, kind)
		res, err := tn.CPALS(CPALSOptions{Rank: 2, MaxIter: 60, Seed: 5})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		fits = append(fits, res.Fit)
	}
	for i := 1; i < len(fits); i++ {
		if math.Abs(fits[i]-fits[0]) > 1e-9 {
			t.Fatalf("fits differ across formats: %v", fits)
		}
	}
}

func TestCPALSReconstructionError(t *testing.T) {
	tn := rank2Tensor(t, core.GCSR)
	res, err := tn.CPALS(CPALSOptions{Rank: 2, MaxIter: 200, Tol: 1e-12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Point-wise reconstruction tracks the stored values.
	var num, den float64
	it := tn.Reader.(core.Iterator)
	it.Each(func(p []uint64, slot int) bool {
		diff := res.Reconstruct(p) - tn.Values[slot]
		num += diff * diff
		den += tn.Values[slot] * tn.Values[slot]
		return true
	})
	if rel := math.Sqrt(num / den); rel > 0.05 {
		t.Fatalf("relative reconstruction error %v", rel)
	}
}

// TestCPALSOnSparseSupport: with most cells implicitly zero the tensor
// is no longer rank-2, but ALS must still improve the fit monotonically
// and capture a meaningful share of the mass.
func TestCPALSOnSparseSupport(t *testing.T) {
	dense := rank2Tensor(t, core.CSF)
	coords := tensor.NewCoords(3, 0)
	var vals []float64
	it := dense.Reader.(core.Iterator)
	it.Each(func(p []uint64, slot int) bool {
		if (p[0]+p[1]+p[2])%3 == 0 {
			coords.Append(p...)
			vals = append(vals, dense.Values[slot])
		}
		return true
	})
	tn, err := TensorFrom(core.CSF, tensor.Shape{12, 10, 8}, coords, vals)
	if err != nil {
		t.Fatal(err)
	}
	few, err := tn.CPALS(CPALSOptions{Rank: 4, MaxIter: 3, Tol: 1e-15, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	many, err := tn.CPALS(CPALSOptions{Rank: 4, MaxIter: 80, Tol: 1e-15, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if many.Fit < few.Fit {
		t.Fatalf("fit regressed with more iterations: %v -> %v", few.Fit, many.Fit)
	}
	if many.Fit < 0.3 {
		t.Fatalf("fit = %v, expected a meaningful share of the mass", many.Fit)
	}
}

// TestCPALSImputeCompletesMissingCells: EM imputation must predict
// held-out cells of a low-rank tensor far better than zero-filled ALS.
func TestCPALSImputeCompletesMissingCells(t *testing.T) {
	dense := rank2Tensor(t, core.CSF)
	lin, err := tensor.NewLinearizer(dense.Shape, tensor.RowMajor)
	if err != nil {
		t.Fatal(err)
	}
	truth := map[uint64]float64{}
	coords := tensor.NewCoords(3, 0)
	var vals []float64
	var heldOut []uint64
	it := dense.Reader.(core.Iterator)
	it.Each(func(p []uint64, slot int) bool {
		addr := lin.Linearize(p)
		truth[addr] = dense.Values[slot]
		// Hold out a scattered ~quarter (a structured pattern like
		// addr%4 would delete whole mode-2 slices, which no method
		// can recover).
		if (addr*2654435761)%16 < 4 {
			heldOut = append(heldOut, addr)
		} else {
			coords.Append(p...)
			vals = append(vals, dense.Values[slot])
		}
		return true
	})
	tn, err := TensorFrom(core.CSF, dense.Shape, coords, vals)
	if err != nil {
		t.Fatal(err)
	}
	opts := CPALSOptions{Rank: 2, MaxIter: 40, Tol: 1e-10, Seed: 4}

	zeroFilled, err := tn.CPALS(opts)
	if err != nil {
		t.Fatal(err)
	}
	imputed, err := tn.CPALSImpute(opts, 40)
	if err != nil {
		t.Fatal(err)
	}
	errOf := func(r *CPResult) float64 {
		var se float64
		p := make([]uint64, 3)
		for _, addr := range heldOut {
			lin.Delinearize(addr, p)
			d := r.Reconstruct(p) - truth[addr]
			se += d * d
		}
		return math.Sqrt(se / float64(len(heldOut)))
	}
	zf, im := errOf(zeroFilled), errOf(imputed)
	if im > zf/3 {
		t.Fatalf("imputed RMSE %v not clearly below zero-filled %v", im, zf)
	}
	if im > 0.1 {
		t.Fatalf("imputed RMSE %v too high for an exactly low-rank tensor", im)
	}
}

func TestCPALSImputeValidation(t *testing.T) {
	tn := rank2Tensor(t, core.COO)
	if _, err := tn.CPALSImpute(CPALSOptions{Rank: 1}, 0); err == nil {
		t.Error("0 outer iterations accepted")
	}
	shape2 := tensor.Shape{4, 4}
	c := tensor.NewCoords(2, 1)
	c.Append(1, 1)
	tn2, err := TensorFrom(core.COO, shape2, c, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn2.CPALSImpute(CPALSOptions{Rank: 1}, 1); err == nil {
		t.Error("2-way tensor accepted")
	}
	// Oversized volumes are refused rather than exhausting memory.
	big := tensor.NewCoords(3, 1)
	big.Append(0, 0, 0)
	tb, err := TensorFrom(core.COO, tensor.Shape{1 << 10, 1 << 10, 1 << 10}, big, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.CPALSImpute(CPALSOptions{Rank: 1}, 1); err == nil {
		t.Error("oversized volume accepted")
	}
}

func TestCPALSFitImprovesWithRank(t *testing.T) {
	tn := rank2Tensor(t, core.CSF)
	fit1, err := tn.CPALS(CPALSOptions{Rank: 1, MaxIter: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	fit2, err := tn.CPALS(CPALSOptions{Rank: 2, MaxIter: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if fit2.Fit <= fit1.Fit {
		t.Fatalf("rank 2 fit %v not above rank 1 fit %v", fit2.Fit, fit1.Fit)
	}
}

func TestCPALSValidation(t *testing.T) {
	tn := rank2Tensor(t, core.COO)
	if _, err := tn.CPALS(CPALSOptions{Rank: 0}); err == nil {
		t.Error("rank 0 accepted")
	}
	shape2 := tensor.Shape{4, 4}
	c := tensor.NewCoords(2, 1)
	c.Append(1, 1)
	tn2, err := TensorFrom(core.COO, shape2, c, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn2.CPALS(CPALSOptions{Rank: 1}); err == nil {
		t.Error("2-way tensor accepted")
	}
	// All-zero tensors have no decomposition.
	c3 := tensor.NewCoords(3, 1)
	c3.Append(0, 0, 0)
	tz, err := TensorFrom(core.COO, tensor.Shape{2, 2, 2}, c3, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tz.CPALS(CPALSOptions{Rank: 1}); err == nil {
		t.Error("zero tensor accepted")
	}
}

func TestGramAndHadamardHelpers(t *testing.T) {
	f := NewDense(3, 2)
	copy(f.Data, []float64{1, 2, 3, 4, 5, 6})
	g := gramMatrix(f)
	// FᵀF = [[35, 44], [44, 56]].
	want := []float64{35, 44, 44, 56}
	for i, v := range want {
		if g.Data[i] != v {
			t.Fatalf("gram = %v, want %v", g.Data, want)
		}
	}
	h := hadamard(g, g)
	if h.Data[0] != 35*35 || h.Data[3] != 56*56 {
		t.Fatalf("hadamard = %v", h.Data)
	}
}

func TestSolveGramKnownSystem(t *testing.T) {
	// G = [[4,2],[2,3]], M = row [8, 7]: X = M G⁻¹ = [ (8*3-7*2)/8, (7*4-8*2)/8 ] = [1.25, 1.5].
	g := NewDense(2, 2)
	copy(g.Data, []float64{4, 2, 2, 3})
	m := NewDense(1, 2)
	copy(m.Data, []float64{8, 7})
	x, err := solveGram(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x.At(0, 0)-1.25) > 1e-9 || math.Abs(x.At(0, 1)-1.5) > 1e-9 {
		t.Fatalf("solve = %v", x.Data)
	}
}

func TestSolveGramRejectsIndefinite(t *testing.T) {
	g := NewDense(2, 2)
	copy(g.Data, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	m := NewDense(1, 2)
	if _, err := solveGram(g, m); err == nil {
		t.Fatal("indefinite Gram accepted")
	}
}
