// Package linalg provides sparse kernels over the storage
// organizations' readers — the downstream computations the paper's
// introduction motivates sparse storage with. Every kernel consumes the
// streaming iteration contract (core.Points, native on readers that
// implement core.Streamer and bridged from core.Iterator otherwise), so
// it runs unchanged over COO, LINEAR, GCSR++, GCSC++, CSF, or BCOO
// payloads: the storage organization decides the iteration order and
// cost, not the math.
//
// Included: sparse matrix-vector multiply (SpMV), tensor-times-vector
// contraction (TTV), the matricized tensor times Khatri-Rao product
// (MTTKRP — the paper cites SpMTTKRP as the canonical sparse-tensor
// kernel), and a conjugate-gradient solver driving SpMV.
package linalg

import (
	"fmt"

	"sparseart/internal/core"
	"sparseart/internal/tensor"
)

// Matrix couples a 2D reader with its packed value buffer.
type Matrix struct {
	Shape  tensor.Shape
	Reader core.Reader
	Values []float64
}

// MatrixFrom packages a coordinate-form matrix in the given
// organization and wraps it for the kernels.
func MatrixFrom(kind core.Kind, shape tensor.Shape, c *tensor.Coords, values []float64) (*Matrix, error) {
	r, packed, err := build(kind, shape, c, values)
	if err != nil {
		return nil, err
	}
	return NewMatrix(shape, r, packed)
}

// TensorFrom packages a coordinate-form tensor in the given
// organization and wraps it for the kernels.
func TensorFrom(kind core.Kind, shape tensor.Shape, c *tensor.Coords, values []float64) (*Tensor, error) {
	r, packed, err := build(kind, shape, c, values)
	if err != nil {
		return nil, err
	}
	return NewTensor(shape, r, packed)
}

func build(kind core.Kind, shape tensor.Shape, c *tensor.Coords, values []float64) (core.Reader, []float64, error) {
	if c == nil {
		return nil, nil, fmt.Errorf("linalg: nil coordinate buffer")
	}
	if c.Len() != len(values) {
		return nil, nil, fmt.Errorf("linalg: %d points with %d values", c.Len(), len(values))
	}
	f, err := core.Get(kind)
	if err != nil {
		return nil, nil, err
	}
	built, err := f.Build(c, shape)
	if err != nil {
		return nil, nil, err
	}
	r, err := f.Open(built.Payload, shape)
	if err != nil {
		return nil, nil, err
	}
	return r, tensor.ApplyPermValues(values, built.Perm), nil
}

// NewMatrix validates and wraps a 2D tensor for the kernels.
func NewMatrix(shape tensor.Shape, r core.Reader, values []float64) (*Matrix, error) {
	if shape.Dims() != 2 {
		return nil, fmt.Errorf("linalg: matrix needs 2 dims, got %d", shape.Dims())
	}
	if r.NNZ() != len(values) {
		return nil, fmt.Errorf("linalg: %d values for %d points", len(values), r.NNZ())
	}
	if _, ok := core.Points(r); !ok {
		return nil, fmt.Errorf("linalg: reader cannot iterate")
	}
	return &Matrix{Shape: shape, Reader: r, Values: values}, nil
}

// SpMV computes y = A·x. x must have length Shape[1]; y is allocated
// with length Shape[0].
func (m *Matrix) SpMV(x []float64) ([]float64, error) {
	if uint64(len(x)) != m.Shape[1] {
		return nil, fmt.Errorf("linalg: x has %d entries for %d columns", len(x), m.Shape[1])
	}
	y := make([]float64, m.Shape[0])
	seq, _ := core.Points(m.Reader)
	for p, slot := range seq {
		y[p[0]] += m.Values[slot] * x[p[1]]
	}
	return y, nil
}

// SpMVT computes y = Aᵀ·x. x must have length Shape[0]; y has length
// Shape[1].
func (m *Matrix) SpMVT(x []float64) ([]float64, error) {
	if uint64(len(x)) != m.Shape[0] {
		return nil, fmt.Errorf("linalg: x has %d entries for %d rows", len(x), m.Shape[0])
	}
	y := make([]float64, m.Shape[1])
	seq, _ := core.Points(m.Reader)
	for p, slot := range seq {
		y[p[1]] += m.Values[slot] * x[p[0]]
	}
	return y, nil
}

// Tensor couples a reader of any rank with its packed values.
type Tensor struct {
	Shape  tensor.Shape
	Reader core.Reader
	Values []float64
}

// NewTensor validates and wraps a sparse tensor for the kernels.
func NewTensor(shape tensor.Shape, r core.Reader, values []float64) (*Tensor, error) {
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	if r.NNZ() != len(values) {
		return nil, fmt.Errorf("linalg: %d values for %d points", len(values), r.NNZ())
	}
	if _, ok := core.Points(r); !ok {
		return nil, fmt.Errorf("linalg: reader cannot iterate")
	}
	return &Tensor{Shape: shape, Reader: r, Values: values}, nil
}

// TTV contracts the tensor with a vector along one mode:
// Y[i_0,…,î_mode,…] = Σ_k T[…, k, …]·v[k]. The result is returned as a
// dense buffer in row-major order over the remaining modes, with its
// shape.
func (t *Tensor) TTV(mode int, v []float64) ([]float64, tensor.Shape, error) {
	d := t.Shape.Dims()
	if mode < 0 || mode >= d {
		return nil, nil, fmt.Errorf("linalg: mode %d of %d-dim tensor", mode, d)
	}
	if uint64(len(v)) != t.Shape[mode] {
		return nil, nil, fmt.Errorf("linalg: vector has %d entries for extent %d", len(v), t.Shape[mode])
	}
	outShape := make(tensor.Shape, 0, d-1)
	for i, m := range t.Shape {
		if i != mode {
			outShape = append(outShape, m)
		}
	}
	if len(outShape) == 0 {
		// Rank-1 contraction: a scalar, returned as a 1-cell result.
		outShape = tensor.Shape{1}
	}
	lin, err := tensor.NewLinearizer(outShape, tensor.RowMajor)
	if err != nil {
		return nil, nil, err
	}
	vol, _ := outShape.Volume()
	out := make([]float64, vol)
	q := make([]uint64, len(outShape))
	seq, _ := core.Points(t.Reader)
	for p, slot := range seq {
		if d == 1 {
			out[0] += t.Values[slot] * v[p[0]]
			continue
		}
		k := 0
		for i, c := range p {
			if i == mode {
				continue
			}
			q[k] = c
			k++
		}
		out[lin.Linearize(q)] += t.Values[slot] * v[p[mode]]
	}
	return out, outShape, nil
}

// Dense is a small dense row-major matrix used as a factor in MTTKRP.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewDense allocates a zeroed dense matrix.
func NewDense(rows, cols int) *Dense {
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (d *Dense) At(i, j int) float64 { return d.Data[i*d.Cols+j] }

// Set assigns element (i, j).
func (d *Dense) Set(i, j int, v float64) { d.Data[i*d.Cols+j] = v }

// MTTKRP computes the matricized-tensor times Khatri-Rao product along
// the given mode for a 3-way tensor: for mode 0,
//
//	M[i, r] = Σ_{j,k} T[i,j,k] · B[j,r] · C[k,r]
//
// where factors holds the factor matrices of the two non-target modes
// in ascending mode order. This is the kernel of CP decomposition and
// the paper's canonical example of a sparse-tensor workload
// (SpMTTKRP).
func (t *Tensor) MTTKRP(mode int, factors [2]*Dense) (*Dense, error) {
	d := t.Shape.Dims()
	if d != 3 {
		return nil, fmt.Errorf("linalg: MTTKRP implemented for 3-way tensors, got %d-way", d)
	}
	if mode < 0 || mode > 2 {
		return nil, fmt.Errorf("linalg: mode %d", mode)
	}
	others := [][2]int{0: {1, 2}, 1: {0, 2}, 2: {0, 1}}[mode]
	rank := factors[0].Cols
	if factors[1].Cols != rank {
		return nil, fmt.Errorf("linalg: factor ranks differ: %d vs %d", rank, factors[1].Cols)
	}
	for fi, m := range others {
		if uint64(factors[fi].Rows) != t.Shape[m] {
			return nil, fmt.Errorf("linalg: factor %d has %d rows for extent %d",
				fi, factors[fi].Rows, t.Shape[m])
		}
	}
	out := NewDense(int(t.Shape[mode]), rank)
	seq, _ := core.Points(t.Reader)
	for p, slot := range seq {
		v := t.Values[slot]
		i := int(p[mode])
		j, k := int(p[others[0]]), int(p[others[1]])
		for r := 0; r < rank; r++ {
			out.Data[i*rank+r] += v * factors[0].At(j, r) * factors[1].At(k, r)
		}
	}
	return out, nil
}
